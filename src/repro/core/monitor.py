"""The automatic-signal monitor (AutoSynch) base class.

Subclassing :class:`Monitor` corresponds to the paper's ``monitor class``
modifier: every public method is wrapped so it runs under the monitor's
reentrant lock, and on final exit the relay signaling rule fires (signal one
waiter whose condition has become true — never a broadcast).

``wait_until(condition)`` is the paper's ``waituntil`` statement.  The
condition may be a DSL predicate built from :data:`repro.core.expressions.S`
(enabling Equivalence/Threshold tagging) or any zero/one-argument callable
(an opaque complex predicate — still correct, just untagged).

Example (Fig. 1.2 / 2.2 of the paper)::

    class BoundedQueue(Monitor):
        def __init__(self, n):
            super().__init__()
            self.items = [None] * n
            self.put_ptr = self.take_ptr = self.count = 0
            self.capacity = n

        def put(self, item):
            self.wait_until(S.count < S.capacity)
            self.items[self.put_ptr] = item
            self.put_ptr = (self.put_ptr + 1) % self.capacity
            self.count += 1

        def take(self):
            self.wait_until(S.count > 0)
            x = self.items[self.take_ptr]
            self.take_ptr = (self.take_ptr + 1) % self.capacity
            self.count -= 1
            return x
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, Optional

from repro.analysis import runtime as _monlint
from repro.core.condition_manager import SIGNALING_MODES, ConditionManager
from repro.core.predicates import BoolNode, Predicate
from repro.resilience import chaos as _chaos
from repro.runtime.config import config_snapshot
from repro.runtime.errors import (
    BrokenMonitorError,
    MonitorError,
    NotOwnerError,
    WaitCancelledError,
    WaitTimeoutError,
)
from repro.runtime.ids import next_monitor_id
from repro.runtime.metrics import Metrics, PhaseTimer

#: attribute set by :func:`unmonitored` to opt a method out of auto-locking
_UNMONITORED = "_repro_unmonitored"

#: control-flow exceptions that never poison a monitor: they are raised *by*
#: the framework at well-defined points (before/instead of state mutation),
#: so the invariants cannot have been torn by them (docs/robustness.md)
_CONTROL_FLOW_EXC = (WaitTimeoutError, WaitCancelledError, BrokenMonitorError)


def unmonitored(fn: Callable) -> Callable:
    """Mark a method as *not* a critical section (no lock wrapping).

    The paper's nonblocking helpers (e.g. a lock-free ``isEmpty`` used from
    global predicates) correspond to this.
    """
    setattr(fn, _UNMONITORED, True)
    return fn


def _wrap_method(fn: Callable) -> Callable:
    @functools.wraps(fn)
    def wrapper(self: "Monitor", *args, **kwargs):
        self._monitor_enter()
        try:
            return fn(self, *args, **kwargs)
        except BaseException as exc:
            # §6.2.1: an exception escaping a critical section may leave the
            # invariant torn.  Opt-in poisoning marks the monitor broken so
            # every other thread fails fast instead of computing on corrupt
            # state.  The success path pays nothing for this clause.
            if (config_snapshot().poison_on_exception
                    and not isinstance(exc, _CONTROL_FLOW_EXC)):
                self.mark_broken(exc)
            raise
        finally:
            self._monitor_exit()

    setattr(wrapper, "_repro_wrapped", True)
    return wrapper


def _wrap_method_direct(fn: Callable, plan) -> Callable:
    """Like :func:`_wrap_method`, but the section exit carries the method's
    AOT signal plan (:class:`repro.analysis.aot.MethodSignalPlan`): the
    final exit runs ``ConditionManager.direct_signal(plan)`` — a targeted
    signal with zero relay-search work — instead of the generic relay.
    Only ``@monitor_compile`` applies this, and only to methods whose
    write sets it could close statically (docs/performance.md)."""
    @functools.wraps(fn)
    def wrapper(self: "Monitor", *args, **kwargs):
        self._monitor_enter()
        try:
            return fn(self, *args, **kwargs)
        except BaseException as exc:
            # same poisoning discipline as _wrap_method
            if (config_snapshot().poison_on_exception
                    and not isinstance(exc, _CONTROL_FLOW_EXC)):
                self.mark_broken(exc)
            raise
        finally:
            self._monitor_exit(plan)

    setattr(wrapper, "_repro_wrapped", True)
    setattr(wrapper, "_repro_aot_plan", plan)
    return wrapper


class MonitorMeta(type):
    """Wraps every public callable of a Monitor subclass with lock + relay.

    Dunder methods, names starting with ``_``, ``@unmonitored`` methods,
    static/class methods, and properties are left untouched.
    """

    def __new__(mcls, name, bases, namespace, **kwargs):
        for attr, value in list(namespace.items()):
            if attr.startswith("_"):
                continue
            if not callable(value):
                continue
            if isinstance(value, (staticmethod, classmethod, property, type)):
                continue
            if getattr(value, _UNMONITORED, False):
                continue
            if getattr(value, "_repro_wrapped", False):
                continue
            namespace[attr] = _wrap_method(value)
        return super().__new__(mcls, name, bases, namespace, **kwargs)


class Monitor(metaclass=MonitorMeta):
    """Base class for automatic-signal monitor objects.

    Parameters
    ----------
    signaling:
        one of ``"autosynch"`` (default: relay + predicate tags),
        ``"autosynch_t"`` (relay, linear waiter scan), ``"baseline"``
        (broadcast-everyone; the strawman automatic monitor the paper's
        Figs. 2.4–2.5 show to be 10–50× slower).
    """

    def __init__(self, signaling: str = "autosynch"):
        #: names of shared variables written since the last relay flush —
        #: the current critical section's *dirty set*.  Must exist before
        #: any other attribute so ``__setattr__`` tracking is armed from
        #: the first public write (and before the ConditionManager probes
        #: for it to decide this monitor participates in tracking).
        self._dirty: set = set()
        if signaling not in SIGNALING_MODES:
            raise MonitorError(f"unknown signaling mode {signaling!r}")
        self._monitor_id = next_monitor_id()
        self._lock = threading.RLock()
        self._depth = 0          # reentrancy depth for the owning thread
        #: monotonic state-change stamp: bumped on every monitor exit (and
        #: by the ActiveMonitor server's batch paths, which bypass
        #: ``_monitor_exit``).  Global-predicate waiters memoize atom values
        #: against it to skip re-evaluation when nothing changed (§4.2).
        self._generation = 0
        self._metrics = Metrics()
        self._cond_mgr = ConditionManager(self, self._lock, self._metrics, signaling)
        #: poisoning (docs/robustness.md): the exception that broke this
        #: monitor, or None while healthy.  Read racily on the enter fast
        #: path; written only under the lock.
        self._broken: Optional[BaseException] = None
        #: hook used by the multi-object layer: callables run (with the lock
        #: held) just before the final lock release of a monitor section.
        self._exit_hooks: list[Callable[["Monitor"], None]] = []
        #: callables run (with the lock held) when the monitor is marked
        #: broken — e.g. the multisynch manager waking global waiters.
        self._break_hooks: list[Callable[["Monitor"], None]] = []
        #: when inside a multisynch block, lock acquisition is redirected to
        #: the block (which may need to acquire several locks in id order).
        self._external_section = threading.local()

    # ------------------------------------------------------- write tracking
    def __setattr__(self, name: str, value) -> None:
        # Every public-attribute store is a shared-variable write (Def. 1);
        # recording it costs one set.add on the first write of a name per
        # critical section.  Underscore names are framework internals.  The
        # AttributeError guard covers stores before Monitor.__init__ ran
        # (e.g. a subclass assigning fields first).  No-GIL audit: public
        # writes happen inside the critical section (monitor lock held),
        # so the _dirty set has one mutator at a time; the relay flushes
        # it under the same lock — no GIL atomicity is assumed.
        object.__setattr__(self, name, value)
        if name[0] != "_":
            try:
                self._dirty.add(name)
            except AttributeError:
                pass

    def __delattr__(self, name: str) -> None:
        object.__delattr__(self, name)
        if name[0] != "_":
            try:
                self._dirty.add(name)
            except AttributeError:
                pass

    def _note_write(self, name: str) -> None:
        """Record a shared-variable write that bypassed attribute assignment.

        In-place container mutation (``self.items.append(x)``,
        ``self.table[k] = v``) never triggers ``__setattr__``; call this (or
        let the ``waituntil`` preprocessor insert it) so dependency-filtered
        relay still sees the write.  monlint's W007 flags bypassing writes
        whose variable some predicate reads.
        """
        try:
            self._dirty.add(name)
        except AttributeError:
            pass

    # ------------------------------------------------------------ properties
    @property
    def monitor_id(self) -> int:
        """Globally unique id; multisynch's lock order is ascending id."""
        return self._monitor_id

    @property
    def metrics(self) -> Metrics:
        return self._metrics

    # ------------------------------------------------------- section control
    def _monitor_enter(self) -> None:
        if _monlint.enabled:
            # raises LockOrderError *before* acquiring on a violation
            _monlint.on_acquire(self)
        if _chaos.enabled:
            _chaos.fire("monitor_enter", self)
        # fast path: no allocation, one snapshot read; a PhaseTimer exists
        # only when phase timing is actually on
        if self._depth == 0 and config_snapshot().phase_timing:
            with PhaseTimer(self._metrics, "lock_time"):
                self._lock.acquire()
        else:
            self._lock.acquire()
        self._depth += 1
        # Checked *after* acquiring so a thread already queued on the lock
        # when the monitor breaks also fails fast; one load + branch.
        broken = self._broken
        if broken is not None:
            self._depth -= 1
            if _monlint.enabled:
                _monlint.on_release(self)  # keep lock-order tracking balanced
            self._lock.release()
            raise BrokenMonitorError(f"{self!r} is broken", broken)

    def _monitor_exit(self, aot_plan=None) -> None:
        if _monlint.enabled:
            _monlint.on_release(self)
        self._depth -= 1
        # conservative: every exit may have changed state; the bump happens
        # before the lock release so a waiter sampling generations under the
        # locks can never miss a mutation
        self._generation += 1
        if self._depth == 0:
            try:
                for hook in self._exit_hooks:
                    hook(self)
                if aot_plan is not None:
                    # AOT signal placement: this section's write set was
                    # closed statically, so the exit signals directly and
                    # skips the relay search (falls back inside when the
                    # observed writes escape the plan or a config lane
                    # wants the generic path)
                    self._cond_mgr.direct_signal(aot_plan)
                else:
                    self._cond_mgr.relay_signal()
            finally:
                self._lock.release()
            # fires outside the lock: a kill injected here cannot wedge the
            # monitor behind a never-released lock
            if _chaos.enabled:
                _chaos.fire("monitor_exit", self)
        else:
            self._lock.release()

    def _owned(self) -> bool:
        # RLock exposes no owner query; acquire(blocking=False) would be
        # racy.  Track depth instead: depth>0 while some thread is inside,
        # and only the owner can observe its own depth consistently.
        return self._depth > 0

    # -------------------------------------------------------------- waituntil
    @unmonitored
    def wait_until(self, condition: BoolNode | Callable[..., bool] | bool,
                   *,
                   timeout: Optional[float] = None,
                   deadline: Optional[float] = None,
                   cancel=None) -> None:
        """The paper's ``waituntil(P)`` statement.

        Must be called from inside a monitor method (the lock is held).  If
        the predicate is false the thread parks; the relay rule wakes it when
        another thread makes the predicate true.

        ``timeout`` (relative seconds) / ``deadline`` (absolute
        ``time.monotonic()`` instant) bound the wait with
        :class:`WaitTimeoutError`; a :class:`~repro.resilience.CancelToken`
        passed as ``cancel`` aborts it with :class:`WaitCancelledError`.
        Abandoning a wait never loses a signal: the departing waiter re-runs
        the relay rule after deregistering (see
        ``ConditionManager.wait_blocking`` and docs/robustness.md).
        """
        if self._depth <= 0:
            raise NotOwnerError("wait_until called outside a monitor method")
        predicate = condition if isinstance(condition, Predicate) else Predicate(condition)
        if _monlint.enabled:
            # probe once: a predicate that mutates monitor state on
            # evaluation breaks closure (Def. 2) — fail loudly here rather
            # than corrupting relay signaling later
            _monlint.check_predicate(predicate, self)
        # Fast path — predicate already true: one evaluator call and one
        # counter increment, no Waiter, no depth juggling, nothing
        # allocated.  This is the dominant case in well-tuned programs and
        # the one the microbenchmarks gate (docs/performance.md).  The slot
        # peek skips a method call once the predicate has a compiled closure.
        ev = predicate._evaluator
        result = ev(self) if ev is not None else predicate.fast_eval(self)
        self._metrics.predicate_evals += 1
        if result:
            return
        # A waiting thread must not hold the lock reentrantly: Condition.wait
        # releases the lock exactly once, so a nested hold would deadlock.
        # Inside a nested call (e.g. a monitor method invoked under
        # multisynch) the wait is legal only when the predicate already
        # holds — which it does in the paper's idioms, since the enclosing
        # section owns every monitor the condition reads.  Blocking waits on
        # conditions spanning the enclosing section must go through
        # ``Multisynch.wait_until`` instead.
        if self._depth > 1:
            raise MonitorError(
                "a blocking wait_until inside a nested monitor call would "
                "deadlock; use multisynch(...).wait_until for conditions "
                "spanning an enclosing section"
            )
        saved_depth = self._depth
        self._depth = 0  # we are not an active holder while parked
        try:
            self._cond_mgr.wait_blocking(
                predicate, timeout=timeout, deadline=deadline, cancel=cancel)
        finally:
            self._depth = saved_depth

    # -------------------------------------------------------------- poisoning
    @property
    def broken(self) -> bool:
        """True when the monitor has been poisoned (racy read)."""
        return self._broken is not None

    @property
    def broken_cause(self) -> Optional[BaseException]:
        """The exception that poisoned the monitor, or None while healthy."""
        return self._broken

    @unmonitored
    def mark_broken(self, cause: Optional[BaseException] = None) -> bool:
        """Poison the monitor (§6.2.1, docs/robustness.md).

        Marks the state as possibly corrupt: every parked waiter is woken
        with a :class:`BrokenMonitorError` (carrying ``cause``), and every
        future entry attempt fails fast with the same.  Idempotent — the
        first cause wins; returns False when already broken.

        Called automatically by the method wrapper when
        ``Config.poison_on_exception`` is on and a non-control-flow
        exception escapes a critical section; may also be called explicitly
        by application code that detects corruption.
        """
        with self._lock:
            if self._broken is not None:
                return False
            exc = cause if cause is not None else MonitorError(
                f"{self!r} marked broken")
            self._broken = exc
            self._cond_mgr.poison_all(
                lambda: BrokenMonitorError(f"{self!r} is broken", exc))
            for hook in self._break_hooks:
                try:
                    hook(self)
                except Exception:  # a notifier must not mask the poisoning
                    pass
            return True

    @unmonitored
    def reset(self) -> Optional[BaseException]:
        """Clear a broken state after repair; returns the old cause.

        The escape hatch: the caller asserts it has restored the monitor's
        invariant (e.g. reinitialized the state in a fresh critical
        section).  The framework cannot check that claim.
        """
        with self._lock:
            cause, self._broken = self._broken, None
            return cause

    # ------------------------------------------------------------- utilities
    @unmonitored
    def signal_hint(self) -> None:
        """Explicitly run the relay rule now (rarely needed; the framework
        runs it on every monitor exit and before every wait)."""
        if self._depth <= 0:
            raise NotOwnerError("signal_hint called outside a monitor method")
        self._cond_mgr.relay_signal()

    @unmonitored
    def waiting_count(self) -> int:
        """Number of threads currently parked in ``wait_until`` (racy read,
        intended for tests and instrumentation)."""
        return self._cond_mgr.waiting_count()

    @unmonitored
    def dump_waiters(self) -> list[str]:
        """Describe every parked predicate — the first diagnostic to check
        when a program appears wedged (racy read)."""
        return self._cond_mgr.dump_waiters()

    def __repr__(self):
        return f"<{type(self).__name__} monitor #{self._monitor_id}>"


class synchronized:
    """Context manager giving ad-hoc monitor sections on a Monitor::

        with synchronized(queue):
            queue.wait_until(S.count > 0)   # via queue.wait_until
            ...

    Equivalent to wrapping the block body in an anonymous monitor method.
    """

    __slots__ = ("_monitor",)

    def __init__(self, monitor: Monitor):
        self._monitor = monitor

    def __enter__(self) -> Monitor:
        self._monitor._monitor_enter()
        return self._monitor

    def __exit__(self, exc_type, exc, tb) -> None:
        # same poisoning discipline as the method wrapper: an ad-hoc section
        # is a critical section too
        if (exc is not None
                and config_snapshot().poison_on_exception
                and not isinstance(exc, _CONTROL_FLOW_EXC)):
            self._monitor.mark_broken(exc)
        self._monitor._monitor_exit()
