"""Tag indexes: equivalence hash tables and threshold heaps (§2.4.2, Alg. 2).

Per monitor, the condition manager keeps:

* for each shared-expression key carrying Equivalence tags, a hash table
  from constant value → tag record (O(1) lookup after one evaluation of the
  shared expression);
* for each shared-expression key carrying Threshold tags, a min-heap for
  ``>``/``>=`` tags and a max-heap for ``<``/``<=`` tags, exploiting
  monotonicity: if the root's condition fails, every descendant's fails too.
  Ties between ``>=`` and ``>`` on the same constant rank the inclusive
  operator first, exactly as §2.4.2 specifies;
* a plain list of None-tag records scanned exhaustively as the last resort.

Each record holds the waiters whose predicate owns a conjunction with that
tag; multiple predicates sharing a conjunct share one record.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.core.tags import Tag, TagKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.waiter import Waiter

_SATISFIES = {
    "<": lambda value, key: value < key,
    "<=": lambda value, key: value <= key,
    ">": lambda value, key: value > key,
    ">=": lambda value, key: value >= key,
}


class TagRecord:
    """All waiters sharing one tag identity."""

    __slots__ = ("tag", "waiters")

    def __init__(self, tag: Tag):
        self.tag = tag
        self.waiters: list["Waiter"] = []

    def __repr__(self):
        return f"TagRecord({self.tag}, {len(self.waiters)} waiters)"


# Heap entries are plain tuples ``(sign*key, strictness, seq, record)`` so
# heapq's sift comparisons stay in C (a class with a Python ``__lt__`` costs
# one interpreted call per comparison — thousands per walk of a big heap).
# Inclusive operators get strictness 0 so ``>=`` sorts before ``>`` on equal
# keys (§2.4.2); ``seq`` is a unique tiebreaker so comparison never reaches
# the record.
_ENTRY_RECORD = 3


class ThresholdHeap:
    """One heap of threshold tag records for a single shared expression."""

    __slots__ = ("sign", "_heap", "_records", "_live", "_seq")

    def __init__(self, ascending: bool):
        #: ascending=True → `>`/`>=` family (check smallest key first).
        self.sign = 1.0 if ascending else -1.0
        self._heap: list[tuple] = []
        self._records: dict[tuple, TagRecord] = {}
        #: count of records that currently hold waiters, maintained
        #: incrementally by TagIndex.add/remove — ``len(heap)`` used to scan
        #: the whole heap on every relay search
        self._live = 0
        self._seq = 0

    def record_for(self, tag: Tag) -> TagRecord:
        rec = self._records.get(tag.identity())
        if rec is None:
            rec = TagRecord(tag)
            self._records[tag.identity()] = rec
            strictness = 0 if tag.op in ("<=", ">=") else 1
            self._seq += 1
            heapq.heappush(
                self._heap, (self.sign * tag.key, strictness, self._seq, rec)
            )
        return rec

    def note_occupied(self) -> None:
        """A record of this heap went empty → non-empty."""
        self._live += 1

    def note_vacated(self) -> None:
        """A record of this heap went non-empty → empty."""
        self._live -= 1

    def prune_empty(self) -> None:
        """Drop records whose last waiter left (lazy: rebuild when stale)."""
        if len(self._records) > 2 * max(1, self._live):
            live = [e for e in self._heap if e[_ENTRY_RECORD].waiters]
            self._records = {
                e[_ENTRY_RECORD].tag.identity(): e[_ENTRY_RECORD] for e in live
            }
            self._heap = live
            heapq.heapify(self._heap)

    def _live_count(self) -> int:
        return self._live

    def candidates(self, value: Any) -> Iterator[TagRecord]:
        """Yield records whose tag is true for ``value``, root-first.

        Implements Algorithm 2's temporary-removal walk: check the root;
        while it is true, yield its record (the caller evaluates the full
        predicates), pop it to a backup list and look at the new root; when
        a false root or an exhausted heap is reached, reinsert the backup.
        The generator form lets the caller stop as soon as it has signaled.
        """
        backup: list[tuple] = []
        heap = self._heap
        heappop, heappush = heapq.heappop, heapq.heappush
        try:
            while heap:
                entry = heap[0]
                rec = entry[_ENTRY_RECORD]
                tag = rec.tag
                if not _SATISFIES[tag.op](value, tag.key):
                    break
                if rec.waiters:
                    yield rec
                backup.append(heappop(heap))
        finally:
            for entry in backup:
                heappush(heap, entry)

    def __len__(self):
        return self._live_count()


class TagIndex:
    """The complete per-monitor tag structure."""

    __slots__ = ("eq_tables", "heaps", "none_records", "_eq_records")

    def __init__(self):
        #: expr_key → {constant → TagRecord}
        self.eq_tables: dict[Any, dict[Any, TagRecord]] = {}
        #: (expr_key, ascending) → ThresholdHeap
        self.heaps: dict[tuple[Any, bool], ThresholdHeap] = {}
        #: None-tag records (exhaustive scan)
        self.none_records: list[TagRecord] = []
        self._eq_records: dict[tuple, TagRecord] = {}

    # -- registration ---------------------------------------------------------
    def add(self, tag: Tag, waiter: "Waiter") -> TagRecord:
        if tag.kind is TagKind.EQUIVALENCE:
            rec = self._eq_records.get(tag.identity())
            if rec is None:
                rec = TagRecord(tag)
                self._eq_records[tag.identity()] = rec
                self.eq_tables.setdefault(tag.expr_key, {})[tag.key] = rec
            rec.waiters.append(waiter)
            return rec
        if tag.kind is TagKind.THRESHOLD:
            ascending = tag.op in (">", ">=")
            heap = self.heaps.get((tag.expr_key, ascending))
            if heap is None:
                heap = ThresholdHeap(ascending)
                self.heaps[(tag.expr_key, ascending)] = heap
            rec = heap.record_for(tag)
            if not rec.waiters:
                heap.note_occupied()
            rec.waiters.append(waiter)
            return rec
        for rec in self.none_records:
            if not rec.waiters:
                rec.waiters.append(waiter)
                return rec
        rec = TagRecord(tag)
        self.none_records.append(rec)
        rec.waiters.append(waiter)
        return rec

    def remove(self, record: TagRecord, waiter: "Waiter") -> None:
        try:
            record.waiters.remove(waiter)
            removed = True
        except ValueError:
            removed = False
        if not record.waiters:
            tag = record.tag
            if tag.kind is TagKind.EQUIVALENCE:
                self._eq_records.pop(tag.identity(), None)
                table = self.eq_tables.get(tag.expr_key)
                if table is not None:
                    table.pop(tag.key, None)
                    if not table:
                        del self.eq_tables[tag.expr_key]
            elif tag.kind is TagKind.THRESHOLD and removed:
                # ``removed`` guards the live counter: only the removal that
                # actually emptied the record vacates it
                heap = self.heaps.get((tag.expr_key, tag.op in (">", ">=")))
                if heap is not None:
                    heap.note_vacated()
                    heap.prune_empty()
            # None records are recycled in place by ``add``.

    # -- search ---------------------------------------------------------------
    def search(
        self,
        evaluate_expr: Callable[[Any], Any],
        predicate_true: Callable[["Waiter"], bool],
    ) -> "Waiter | None":
        """Find one waiter whose predicate is true, cheapest tags first.

        ``evaluate_expr(expr_key)`` evaluates the canonical shared
        expression against the monitor state; ``predicate_true(waiter)``
        evaluates the waiter's full closure predicate.  Returns the first
        satisfied waiter, or None.
        """
        # 1. Equivalence tables: one expression evaluation + one hash probe.
        for expr_key, table in self.eq_tables.items():
            value = evaluate_expr(expr_key)
            rec = table.get(value)
            if rec is None and isinstance(value, float) and value.is_integer():
                rec = table.get(int(value))
            if rec is not None:
                for waiter in rec.waiters:
                    if predicate_true(waiter):
                        return waiter
        # 2. Threshold heaps: monotone root-first walk.
        for (expr_key, _asc), heap in self.heaps.items():
            if not len(heap):
                continue
            value = evaluate_expr(expr_key)
            for rec in heap.candidates(value):
                for waiter in rec.waiters:
                    if predicate_true(waiter):
                        return waiter
        # 3. None tags: exhaustive.
        for rec in self.none_records:
            for waiter in rec.waiters:
                if predicate_true(waiter):
                    return waiter
        return None

    def waiter_count(self) -> int:
        seen: set[int] = set()
        for rec in self._iter_records():
            for w in rec.waiters:
                seen.add(id(w))
        return len(seen)

    def _iter_records(self) -> Iterator[TagRecord]:
        yield from self._eq_records.values()
        for heap in self.heaps.values():
            yield from (e[_ENTRY_RECORD] for e in heap._heap)
        yield from self.none_records
