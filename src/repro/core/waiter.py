"""Per-thread wait records.

Each blocked ``wait_until`` call owns a Waiter: its closure predicate, the
tag records it was indexed under, and a private condition variable bound to
the monitor lock so that the relay rule can wake exactly this thread (the
framework never broadcasts; relay invariance makes ``signalAll`` unnecessary).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.core.predicates import Predicate

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tag_index import TagRecord


class Waiter:
    """One blocked thread's registration with a condition manager."""

    __slots__ = ("predicate", "cv", "signaled", "records", "thread_id", "poison")

    def __init__(self, predicate: Predicate, lock: threading.RLock,
                 cv: threading.Condition | None = None):
        self.predicate = predicate
        # condition variables are recycled through the manager's inactive
        # pool (§2.5.1); a fresh one is built only when the pool is empty
        self.cv = cv if cv is not None else threading.Condition(lock)
        self.signaled = False
        self.records: list["TagRecord"] = []
        self.thread_id = threading.get_ident()
        #: exception raised while another thread evaluated this predicate;
        #: re-raised in the owning thread when it wakes
        self.poison: BaseException | None = None

    def evaluate(self, monitor: Any) -> bool:
        return self.predicate.evaluate(monitor)

    def signal(self) -> None:
        """Wake this waiter (caller holds the monitor lock)."""
        self.signaled = True
        self.cv.notify()

    def __repr__(self):
        return f"Waiter(tid={self.thread_id}, {self.predicate!r})"
