"""Per-thread wait records.

Each blocked ``wait_until`` call owns a Waiter: its closure predicate (and
the predicate's compiled evaluator), the tag records it was indexed under,
the expression-cache keys it pinned, and a private condition variable bound
to the monitor lock so that the relay rule can wake exactly this thread
(the framework never broadcasts; relay invariance makes ``signalAll``
unnecessary).

Waiters are *recycled*: when a waiter deregisters, the condition manager
returns the whole object — condition variable included — to an inactive
pool bounded by the paper's 2n rule (§2.5.1), so a steady-state wait/wake
churn allocates no new Waiter or Condition objects at all.

:class:`AsyncWaiter` is the *waiterless* variant backing the asyncio
frontend (:mod:`repro.aio`): same registration, predicate machinery and
relay eligibility, but no parked thread and no condition variable — the
wake action is a callable the signaler runs (a threadsafe event-loop
callback in practice).  Async waiters are never pooled.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.predicates import Predicate
from repro.runtime.atomics import AtomicFlag

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tag_index import TagRecord


class Waiter:
    """One blocked thread's registration with a condition manager."""

    __slots__ = (
        "predicate", "eval_fn", "cv", "signaled", "records",
        "expr_keys", "evaler_keys", "thread_id", "poison",
        "read_set", "untagged", "pending", "aot_direct", "deliver",
    )

    def __init__(self, predicate: Predicate, lock: threading.RLock,
                 cv: threading.Condition | None = None):
        # condition variables ride along with recycled waiters; a fresh one
        # is built only for a brand-new Waiter (or an explicit ``cv``)
        self.cv = cv if cv is not None else threading.Condition(lock)
        self.records: list["TagRecord"] = []
        #: structural keys this waiter pinned in the manager's node cache
        self.expr_keys: list[Any] = []
        #: canonical expression keys whose compiled evaluators it pinned
        self.evaler_keys: list[Any] = []
        self.reset(predicate)

    def reset(self, predicate: Predicate) -> None:
        """Re-arm a (possibly recycled) waiter for a new wait."""
        self.predicate = predicate
        #: the predicate's fastest evaluator — compiled closure when
        #: available, tree-walking ``Predicate.evaluate`` otherwise
        self.eval_fn: Callable[[Any], Any] = predicate.evaluator()
        self.signaled = False
        self.thread_id = threading.get_ident()
        #: exception raised while another thread evaluated this predicate;
        #: re-raised in the owning thread when it wakes
        self.poison: Optional[BaseException] = None
        #: dependency tracking (untagged waiters only): the predicate's
        #: shared-variable read set (None = opaque, re-check every relay)
        self.read_set: Optional[frozenset] = None
        #: True when registered in the manager's untagged structures
        self.untagged = False
        #: True while queued for (re-)evaluation at the next relay search
        self.pending = False
        #: True when registered with a monitor whose compiled write sites
        #: signal directly (AOT signal placement); diagnostics report the
        #: signal path so stall triage doesn't mis-blame the relay
        self.aot_direct = False
        #: waiterless (event-loop) waiters override this with the wake
        #: action to run instead of a CV notify; None means a parked thread
        #: owns this record and the relay signals its condition variable
        self.deliver = None

    def retire(self) -> None:
        """Drop references held for the finished wait (before pooling)."""
        self.predicate = None  # type: ignore[assignment]
        self.eval_fn = _never
        self.poison = None

    def evaluate(self, monitor: Any) -> bool:
        return self.eval_fn(monitor)

    def signal(self) -> None:
        """Wake this waiter (caller holds the monitor lock)."""
        self.signaled = True
        self.cv.notify()

    def describe(self) -> str:
        """Lock-free description for diagnostics (watchdog, dump_waiters).

        Identifies the predicate by its compiled-source cache key when one
        exists — stable across runs for structurally equal predicates —
        falling back to ``repr``.  Never evaluates the predicate.
        """
        from repro.core import compiled  # local: avoid import cycle at load

        pred = self.predicate
        key = compiled.source_key(pred) if pred is not None else None
        what = key if key is not None else repr(pred)
        reads = pred.read_set() if pred is not None else None
        if reads is None:
            reads_desc = "?"  # opaque: may read any shared variable
        else:
            reads_desc = "{" + ",".join(sorted(reads)) + "}"
        path = "direct" if self.aot_direct else "relay"
        return f"tid={self.thread_id} on {what} reads={reads_desc} path={path}"

    def __repr__(self):
        return f"Waiter(tid={self.thread_id}, {self.predicate!r})"


class AsyncWaiter(Waiter):
    """A waiterless waiter: a registration with no parked thread behind it.

    Joins the condition manager's structures exactly like a threaded waiter
    — tag records, dependency buckets, AOT direct-signal coverage — so the
    relay-invariance argument (Prop. 2) is unchanged.  What differs is the
    wake side: there is no condition variable; when a signaler finds this
    waiter satisfied (or poisons it) it *claims* the record and runs
    ``deliver(outcome)`` — for the asyncio frontend, a
    ``loop.call_soon_threadsafe`` hop that resolves an ``asyncio.Future``.

    ``claimed`` arbitrates the signal/abandon race without the monitor
    lock: the signaler claims while holding the lock, a timeout or
    cancellation claims from the event-loop (or canceller) thread through
    the flag's own micro-lock — bounded, never the monitor lock, so the
    event loop cannot block on monitor traffic.  Exactly one side wins;
    the loser's path is a no-op.  A claimed-but-still-registered waiter is
    inert (``signaled`` is set) and is reaped by the next lock holder.
    """

    __slots__ = ("claimed",)

    def __init__(self, predicate: Predicate,
                 deliver: Callable[[Optional[BaseException]], None]):
        self.cv = None  # type: ignore[assignment] — nothing parks on this
        self.records = []
        self.expr_keys = []
        self.evaler_keys = []
        self.reset(predicate)
        self.deliver = deliver
        self.claimed = AtomicFlag()

    def signal(self) -> None:  # pragma: no cover — defensive: every signal
        self.signaled = True   # site routes async waiters through deliver

    def __repr__(self):
        return f"AsyncWaiter(tid={self.thread_id}, {self.predicate!r})"


def _never(monitor: Any) -> bool:  # pragma: no cover — retired waiters are
    return False                   # never evaluated; defensive placeholder
