"""Arithmetic expression DSL over monitor shared state.

The paper's preprocessor sees ``waituntil(count + objs.length <= items.length)``
as source text; here the programmer builds the same expression tree with
overloaded operators over :data:`S`, a namespace of *shared variables*::

    from repro.core.expressions import S
    self.wait_until(S.count + len(objs) <= S.capacity)

Local values (``len(objs)`` above) enter the tree as plain Python constants —
this *is* the paper's closure operation (Def. 2): local variables are frozen
to their values at the instant ``wait_until`` is invoked, producing a shared
predicate any thread can evaluate (Prop. 1).

Expressions are normalized to a linear form ``Σ coeffᵢ·sharedᵢ + const``
whenever possible so that predicates such as ``count + 3 <= capacity`` and
``count + 48 <= capacity`` share one canonical shared-expression key
(``count - capacity``) and therefore one threshold heap (§2.4).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.runtime.errors import PredicateError

Number = (int, float)

#: the "reads nothing" read set (compare with ``None`` = "reads everything")
_EMPTY_READS: frozenset = frozenset()


def union_reads(*sets: Optional[frozenset]) -> Optional[frozenset]:
    """Union read sets, propagating the conservative ``None`` (unknown)."""
    out = _EMPTY_READS
    for s in sets:
        if s is None:
            return None
        out = out | s if s else out
    return out


class Expr:
    """Base class for expression-tree nodes.

    Subclasses implement :meth:`evaluate` against a monitor instance and
    :meth:`linear`, which returns ``(terms, const)`` — a mapping from shared
    term keys to coefficients plus a constant offset — or ``None`` when the
    expression is not linear in its shared terms.
    """

    __slots__ = ()

    def evaluate(self, monitor: Any) -> Any:
        raise NotImplementedError

    def linear(self) -> Optional[tuple[dict[Any, float], float]]:
        return None

    def key(self) -> Any:
        """A hashable structural identity for tag-table sharing."""
        raise NotImplementedError

    def read_set(self) -> Optional[frozenset]:
        """Shared-variable names this expression reads, or None if unknown.

        ``None`` is the conservative answer ("reads everything"): dependency
        filtering must then treat the expression as affected by every write.
        An *empty* frozenset is a much stronger claim — "reads no shared
        state at all" — so unknown nodes must never return it.
        """
        return None

    # -- arithmetic operators ------------------------------------------------
    def __add__(self, other):
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other):
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other):
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other):
        return BinOp("*", _wrap(other), self)

    def __mod__(self, other):
        return BinOp("%", self, _wrap(other))

    def __neg__(self):
        return BinOp("*", Const(-1), self)

    # -- comparison operators build boolean atoms ----------------------------
    # (imports deferred to avoid a module cycle)
    def __eq__(self, other):  # type: ignore[override]
        from repro.core.predicates import Comparison

        return Comparison(self, "==", _wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        from repro.core.predicates import Comparison

        return Comparison(self, "!=", _wrap(other))

    def __lt__(self, other):
        from repro.core.predicates import Comparison

        return Comparison(self, "<", _wrap(other))

    def __le__(self, other):
        from repro.core.predicates import Comparison

        return Comparison(self, "<=", _wrap(other))

    def __gt__(self, other):
        from repro.core.predicates import Comparison

        return Comparison(self, ">", _wrap(other))

    def __ge__(self, other):
        from repro.core.predicates import Comparison

        return Comparison(self, ">=", _wrap(other))

    __hash__ = None  # type: ignore[assignment]  # __eq__ builds atoms


def _wrap(value: Any) -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool) or not isinstance(value, Number):
        # booleans and arbitrary objects are legal constants (equality only)
        return Const(value)
    return Const(value)


class Const(Expr):
    """A frozen (closure-captured) local value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, monitor: Any) -> Any:
        return self.value

    def linear(self):
        if isinstance(self.value, Number) and not isinstance(self.value, bool):
            return {}, float(self.value)
        return None

    def key(self):
        return ("const", self.value)

    def read_set(self):
        return _EMPTY_READS

    def __repr__(self):
        return repr(self.value)


class SharedVar(Expr):
    """An attribute of the monitor object (a *shared variable*, Def. 1)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, monitor: Any) -> Any:
        return getattr(monitor, self.name)

    def linear(self):
        return {("var", self.name): 1.0}, 0.0

    def key(self):
        return ("var", self.name)

    def read_set(self):
        return frozenset((self.name,))

    def __repr__(self):
        return f"S.{self.name}"


class SharedExpr(Expr):
    """An arbitrary computed shared expression, e.g. ``len(self.items)``.

    ``name`` provides the canonical identity; two SharedExprs with the same
    name are assumed to denote the same function of monitor state (so their
    waiters can share tag tables).

    ``reads`` optionally declares the shared-variable names the function
    touches, enabling dependency-filtered relay for computed expressions
    (the ``waituntil`` preprocessor fills it in automatically).  Leaving it
    ``None`` keeps the conservative "reads everything" behavior.
    """

    __slots__ = ("fn", "name", "reads")

    def __init__(self, fn: Callable[[Any], Any], name: str | None = None,
                 reads: Optional[frozenset] = None):
        self.fn = fn
        self.name = name or getattr(fn, "__qualname__", repr(fn))
        self.reads = frozenset(reads) if reads is not None else None

    def evaluate(self, monitor: Any) -> Any:
        return self.fn(monitor)

    def linear(self):
        return {("expr", self.name): 1.0}, 0.0

    def key(self):
        return ("expr", self.name)

    def read_set(self):
        return self.reads

    def __repr__(self):
        return f"E[{self.name}]"


class BinOp(Expr):
    """A binary arithmetic node."""

    __slots__ = ("op", "lhs", "rhs", "_fn")

    _FNS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "%": lambda a, b: a % b,
    }

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in self._FNS:
            raise PredicateError(f"unsupported operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self._fn = self._FNS[op]  # one dict lookup at build, not per eval

    def evaluate(self, monitor: Any) -> Any:
        return self._fn(self.lhs.evaluate(monitor), self.rhs.evaluate(monitor))

    def linear(self):
        left = self.lhs.linear()
        right = self.rhs.linear()
        if left is None or right is None:
            return None
        lterms, lconst = left
        rterms, rconst = right
        if self.op == "+":
            return _merge(lterms, rterms, 1.0), lconst + rconst
        if self.op == "-":
            return _merge(lterms, rterms, -1.0), lconst - rconst
        if self.op == "*":
            # only scalar * linear stays linear; a zero scalar annihilates
            # the terms (keeping 0.0 coefficients would divide by zero when
            # linear_key scales by the first coefficient)
            if not lterms:
                if lconst == 0.0:
                    return {}, 0.0
                return {k: v * lconst for k, v in rterms.items()}, lconst * rconst
            if not rterms:
                if rconst == 0.0:
                    return {}, 0.0
                return {k: v * rconst for k, v in lterms.items()}, lconst * rconst
            return None
        return None  # '%' is never linear

    def key(self):
        return (self.op, self.lhs.key(), self.rhs.key())

    def read_set(self):
        return union_reads(self.lhs.read_set(), self.rhs.read_set())

    def __repr__(self):
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


def _merge(a: dict, b: dict, sign: float) -> dict:
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0.0) + sign * v
        if out[k] == 0.0:
            del out[k]
    return out


def linear_key(terms: dict[Any, float]) -> tuple:
    """Canonical hashable key for a linear combination of shared terms.

    The combination is scaled so its first (lexicographically smallest) term
    has coefficient +1; this makes ``count - capacity`` and
    ``2*count - 2*capacity`` share a key, and lets the comparison normalizer
    fold the scale into the right-hand constant.
    """
    items = sorted(terms.items(), key=lambda kv: repr(kv[0]))
    if not items:
        return ()
    scale = items[0][1]
    return tuple((k, v / scale) for k, v in items)


class _SharedNamespace:
    """``S.count`` → ``SharedVar("count")`` sugar."""

    def __getattr__(self, name: str) -> SharedVar:
        if name.startswith("_"):
            raise AttributeError(name)
        return SharedVar(name)

    def __call__(self, fn: Callable[[Any], Any], name: str | None = None,
                 reads: Optional[frozenset] = None) -> SharedExpr:
        return SharedExpr(fn, name, reads)


#: The shared-variable namespace users import: ``from repro import S``.
S = _SharedNamespace()
