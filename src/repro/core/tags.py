"""Predicate tagging — Algorithm 1 of the paper.

Every DNF conjunction receives exactly one tag:

* ``Equivalence`` when the conjunction contains an atom of shape
  ``shared_expr == constant`` (highest priority: the satisfying set is the
  smallest, so it prunes the search best);
* ``Threshold`` when it contains ``shared_expr op constant`` with
  ``op ∈ {<, <=, >, >=}``;
* ``NONE`` otherwise (opaque functions, disequalities, untaggable atoms).

Only one tag per conjunction is created (§2.4.1: additional tags cannot
accelerate the search and cost maintenance), and predicates sharing a
conjunct share the tag record via the tag's identity tuple.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.predicates import Atom, Comparison

_THRESHOLD_OPS = ("<", "<=", ">", ">=")


class TagKind(enum.Enum):
    EQUIVALENCE = "equivalence"
    THRESHOLD = "threshold"
    NONE = "none"


@dataclass(frozen=True)
class Tag:
    """The paper's four-tuple ``(M, expr, key, op)`` (Def. 9)."""

    kind: TagKind
    expr_key: Any = None      #: canonical shared-expression identity
    key: Any = None           #: closure-captured constant
    op: Optional[str] = None  #: comparison operator for threshold tags

    def identity(self) -> tuple:
        return (self.kind, self.expr_key, self.key, self.op)


def tag_conjunction(conj: tuple[Atom, ...]) -> Tag:
    """Assign the single best tag to one conjunction (Algorithm 1)."""
    threshold: Tag | None = None
    for atom in conj:
        if not isinstance(atom, Comparison):
            continue
        shape = atom.tag_shape
        if shape is None:
            continue
        expr_key, op, const = shape
        if op == "==":
            return Tag(TagKind.EQUIVALENCE, expr_key, const, None)
        if op in _THRESHOLD_OPS and threshold is None:
            try:
                hash(const)
            except TypeError:
                continue
            threshold = Tag(TagKind.THRESHOLD, expr_key, const, op)
    if threshold is not None:
        return threshold
    return Tag(TagKind.NONE)


def tag_predicate(conjunctions: list[tuple[Atom, ...]]) -> list[Tag]:
    """Tag every conjunction of a DNF predicate."""
    return [tag_conjunction(c) for c in conjunctions]
