"""AutoSynch: automatic-signal monitors (Chapter 2 of the paper)."""

from repro.core.compiled import compile_expr_key, compile_predicate, crosscheck
from repro.core.condition_manager import SIGNALING_MODES, ConditionManager
from repro.core.expressions import S, SharedExpr, SharedVar
from repro.core.monitor import Monitor, MonitorMeta, synchronized, unmonitored
from repro.core.predicates import And, Comparison, FuncAtom, Or, Predicate
from repro.core.tags import Tag, TagKind, tag_conjunction, tag_predicate

__all__ = [
    "Monitor",
    "MonitorMeta",
    "synchronized",
    "unmonitored",
    "S",
    "SharedVar",
    "SharedExpr",
    "Predicate",
    "Comparison",
    "FuncAtom",
    "And",
    "Or",
    "Tag",
    "TagKind",
    "tag_conjunction",
    "tag_predicate",
    "ConditionManager",
    "SIGNALING_MODES",
    "compile_predicate",
    "compile_expr_key",
    "crosscheck",
]
