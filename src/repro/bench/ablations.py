"""Ablation benches for the design choices DESIGN.md calls out.

These are extensions beyond the paper's figures: each isolates one design
decision and measures its effect.

* combining batch size (the paper fixes five tasks per combiner turn);
* AV vs CC bookkeeping cost vs false-signal rate (complementing Fig. 4.8);
* SC-queue count-stealing vs a plain locked queue;
* predicate tags on/off at fixed thread count (isolating Fig. 2.6's gap).
"""

from __future__ import annotations

import threading

from repro.active.scqueue import SingleConsumerBoundedQueue
from repro.bench.harness import Series, table, work_scale
from repro.problems.bounded_buffer import run_active_queue
from repro.problems.round_robin import run_round_robin
from repro.runtime import get_config


def ablation_combining_batch() -> Series:
    """Vary the combining batch size around the paper's fixed five."""
    batches = [1, 2, 5, 10, 25]
    cfg = get_config()
    saved = cfg.combining_batch
    ops = work_scale(150, 500)
    fig = Series("Ablation — combining batch size (BQ throughput, K ops/s)",
                 "batch", batches)
    values = []
    try:
        for batch in batches:
            cfg.combining_batch = batch
            values.append(run_active_queue("am", 4, ops, 16).throughput / 1e3)
    finally:
        cfg.combining_batch = saved
    fig.add("am", values)
    return fig.show()


def ablation_av_vs_cc() -> Series:
    """AV vs CC: signaling-side evaluations per completed operation.

    Uses the pizza store (supplier threads guarantee progress, so waiting is
    frequent but the workload cannot strand the way a fixed random
    take-and-put plan can on tiny buffers)."""
    from repro.problems.pizza_store import run_pizza_store

    counts = [2, 4, 8]
    pizzas = work_scale(12, 50)
    fig = Series("Ablation — AS/AV/CC signaling evaluations per pizza",
                 "#cooks", counts)
    for variant in ("as", "av", "cc"):
        per_op = []
        for n in counts:
            result = run_pizza_store(variant, n, pizzas)
            per_op.append(result.metrics["predicate_evals"] / result.operations)
        fig.add(variant, per_op)
    fig.notes = "CC evaluates only local critical clauses on each monitor exit"
    return fig.show()


def ablation_scqueue() -> str:
    """SC-queue count stealing vs a plain locked deque."""
    import collections
    import time

    n_items = work_scale(20_000, 100_000)

    def drive_scqueue() -> float:
        queue = SingleConsumerBoundedQueue(1024)
        start = time.perf_counter()
        done = threading.Event()

        def producer():
            for i in range(n_items):
                queue.put(i)
            done.set()

        t = threading.Thread(target=producer)
        t.start()
        taken = 0
        while taken < n_items:
            if queue.take() is not None:
                taken += 1
        t.join()
        return time.perf_counter() - start

    def drive_locked() -> float:
        queue: collections.deque = collections.deque()
        lock = threading.Lock()
        nonempty = threading.Condition(lock)
        start = time.perf_counter()

        def producer():
            for i in range(n_items):
                with lock:
                    queue.append(i)
                    nonempty.notify()

        t = threading.Thread(target=producer)
        t.start()
        taken = 0
        while taken < n_items:
            with lock:
                while not queue:
                    nonempty.wait()
                queue.popleft()
                taken += 1
        t.join()
        return time.perf_counter() - start

    sc = drive_scqueue()
    locked = drive_locked()
    return table(
        "Ablation — SC-queue count stealing vs locked queue",
        ["design", "seconds", f"throughput (K items/s, n={n_items})"],
        [
            ["sc-queue (stealing)", f"{sc:.4f}", f"{n_items / sc / 1e3:.1f}"],
            ["locked deque", f"{locked:.4f}", f"{n_items / locked / 1e3:.1f}"],
        ],
        notes=(
            "honest negative under CPython: the design targets cache-coherence "
            "traffic on a multicore; here AtomicInteger is lock-backed (no "
            "hardware CAS), so the stolen-count bookkeeping costs more than "
            "it saves"
        ),
    )


def ablation_tags() -> Series:
    """Tags on/off at fixed thread count: relay search work per operation."""
    n = work_scale(16, 64)
    rounds = work_scale(40, 100)
    fig = Series("Ablation — predicate tags (evaluations per op, RR)",
                 "mechanism", ["autosynch_t", "autosynch"])
    evals, checks = [], []
    for mech in ("autosynch_t", "autosynch"):
        result = run_round_robin(mech, n, rounds)
        evals.append(result.metrics["predicate_evals"] / result.operations)
        checks.append(result.metrics["tag_checks"] / result.operations)
    fig.add("pred evals/op", evals)
    fig.add("tag checks/op", checks)
    fig.notes = "tags replace O(waiters) closure evaluations with O(1) index probes"
    return fig.show()


def ablation_stm_retry() -> str:
    """Polling retry (Deuce's regime) vs blocking retry ([WLS14]-style).

    N waiters block on a slowly-advancing gate variable; polling re-runs the
    transaction on a backoff clock regardless of updates, while blocking
    waiters re-run only when a commit touches their read set."""
    import time as _time

    from repro.stm import StmStats, TVar
    from repro.stm.tl2 import atomic as _atomic

    n_waiters = 4

    def drive(blocking: bool) -> tuple[float, int]:
        """Sparse updates: the gate flips once after a long quiet period, so
        a polling waiter's backoff has grown to its cap and it oversleeps the
        enabling commit; a blocking waiter wakes immediately.  Returns the
        mean wake latency and total aborted re-runs."""
        stats = StmStats()
        latencies: list[float] = []
        lat_lock = threading.Lock()
        gate = TVar(False)
        flipped = [0.0]

        def waiter():
            def body():
                from repro.stm import retry

                if not gate.get():
                    retry()
                return True

            _atomic(body, txn_stats=stats, blocking_retry=blocking,
                    max_backoff=0.2)
            with lat_lock:
                latencies.append(_time.perf_counter() - flipped[0])

        threads = [threading.Thread(target=waiter) for _ in range(n_waiters)]
        for t in threads:
            t.start()
        _time.sleep(0.3)        # quiet period: polling backoff grows to cap
        flipped[0] = _time.perf_counter()
        _atomic(lambda: gate.set(True), txn_stats=stats)
        for t in threads:
            t.join(30)
        return sum(latencies) / len(latencies), stats.aborts

    poll_latency, poll_aborts = drive(blocking=False)
    block_latency, block_aborts = drive(blocking=True)
    return table(
        "Ablation — STM retry: polling vs blocking notification",
        ["mode", "mean wake latency (ms)", "aborted re-runs"],
        [
            ["polling (Deuce-style)", f"{poll_latency * 1e3:.1f}", poll_aborts],
            ["blocking (txn-friendly CVs)", f"{block_latency * 1e3:.1f}", block_aborts],
        ],
        notes="after a quiet period, polling waiters oversleep the enabling "
              "commit by up to their backoff cap; blocking waiters wake "
              "immediately (both still re-run per relevant update — the "
              "paper's fundamental TM-conditional-sync limitation)",
    )
