"""Bench harness: sweep scales, table printing, figure registration.

Every paper table/figure has a generator in :mod:`repro.bench.figures` that
produces the same rows/series the paper reports.  ``REPRO_BENCH_SCALE``
selects the sweep size:

* ``quick`` (default) — laptop-scale thread counts and short runs, suitable
  for CI and the pytest-benchmark suite;
* ``full``  — paper-scale sweeps (hundreds of threads on the simulator,
  larger real-thread counts); expect minutes per figure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Sequence


def scale() -> str:
    value = os.environ.get("REPRO_BENCH_SCALE", "quick")
    return value if value in ("quick", "full") else "quick"


def thread_counts() -> list[int]:
    """The x-axis of the chapter-2 figures (# threads)."""
    return [2, 4, 8] if scale() == "quick" else [2, 4, 8, 16, 32, 64, 128, 256]


def sim_thread_counts() -> list[int]:
    """Simulator sweeps are cheap enough for paper-scale counts even quick."""
    return [2, 4, 8, 16, 32, 64] if scale() == "quick" else [2, 4, 8, 16, 32, 64, 128, 256]


def work_scale(quick: int, full: int) -> int:
    return quick if scale() == "quick" else full


@dataclass
class Series:
    """One figure's data: named series over a shared x-axis."""

    title: str
    x_label: str
    x_values: Sequence[Any]
    columns: list[str] = field(default_factory=list)
    rows: dict[str, list[Any]] = field(default_factory=dict)
    notes: str = ""

    def add(self, name: str, values: Sequence[Any]) -> None:
        self.columns.append(name)
        self.rows[name] = list(values)

    def render(self) -> str:
        width = max(12, max((len(c) for c in self.columns), default=12) + 2)
        head = f"{self.x_label:>12}" + "".join(f"{c:>{width}}" for c in self.columns)
        lines = [f"== {self.title} ==", head]
        for i, x in enumerate(self.x_values):
            cells = []
            for c in self.columns:
                v = self.rows[c][i]
                cells.append(f"{v:>{width}.3f}" if isinstance(v, float) else f"{v:>{width}}")
            lines.append(f"{x!s:>12}" + "".join(cells))
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return "\n".join(lines)

    def show(self) -> "Series":
        print("\n" + self.render(), flush=True)
        return self


def table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]],
          notes: str = "") -> str:
    """Render a plain table (for Tables 2.1 / 3.1 / 3.2)."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0)) + 2
        for i, h in enumerate(headers)
    ]
    out = [f"== {title} =="]
    out.append("".join(f"{h:>{w}}" for h, w in zip(headers, widths)))
    for row in rows:
        out.append("".join(f"{str(c):>{w}}" for c, w in zip(row, widths)))
    if notes:
        out.append(f"   note: {notes}")
    text = "\n".join(out)
    print("\n" + text, flush=True)
    return text
