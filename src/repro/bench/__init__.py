"""Benchmark harness: per-figure generators + sweep utilities."""

from repro.bench.harness import Series, scale, sim_thread_counts, table, thread_counts, work_scale

__all__ = [
    "Series",
    "table",
    "scale",
    "thread_counts",
    "sim_thread_counts",
    "work_scale",
]
