"""Figure generators for Chapter 3 (ActiveMonitor evaluation)."""

from __future__ import annotations

from repro.bench.harness import Series, scale, table, work_scale
from repro.problems.bounded_buffer import run_active_queue
from repro.problems.graphs import PAPER_GRAPHS
from repro.problems.psssp import run_psssp
from repro.problems.registry import table_3_1_rows, table_3_2_rows
from repro.problems.round_robin import run_round_robin
from repro.problems.sorted_list import MIXES, run_sorted_list


def _threads() -> list[int]:
    return [2, 4, 8] if scale() == "quick" else [2, 4, 8, 16, 32, 64, 80]


def tables_3_1_and_3_2() -> str:
    """Tables 3.1/3.2: the evaluated problems and their setups."""
    t1 = table("Table 3.1 — problems evaluated", ["name", "description"],
               table_3_1_rows())
    t2 = table("Table 3.2 — evaluation setup", ["name", "CS work", "details"],
               table_3_2_rows())
    return t1 + "\n" + t2


def fig3_3_psssp() -> Series:
    """Fig. 3.3: PSSSP throughput (K edges/s) per graph and variant.

    x-axis = threads; one sub-series per (graph, variant), matching the
    figure's five panels."""
    counts = _threads()
    graph_names = ["NY", "R16"] if scale() == "quick" else list(PAPER_GRAPHS)
    fig = Series("Fig 3.3 — PSSSP throughput (K edges/s)", "#threads", counts)
    for gname in graph_names:
        graph = PAPER_GRAPHS[gname](1.0 if scale() == "full" else 0.5)
        for variant in ("lk", "am", "ams"):
            fig.add(f"{gname}/{variant}", [
                run_psssp(graph, variant, n).throughput / 1e3 for n in counts
            ])
    return fig.show()


def fig3_4_bounded_queue() -> Series:
    """Fig. 3.4: bounded FIFO queue throughput (K ops/s) per capacity."""
    counts = _threads()
    ops = work_scale(150, 500)
    capacities = [4, 16, 64] if scale() == "quick" else [4, 8, 16, 32, 64]
    fig = Series("Fig 3.4 — bounded queue throughput (K ops/s)", "#threads", counts)
    for cap in capacities:
        for variant in ("lk", "am", "ams", "qd"):
            fig.add(f"cap{cap}/{variant}", [
                run_active_queue(variant, n, ops, cap).throughput / 1e3
                for n in counts
            ])
    return fig.show()


def fig3_5_sll_rr() -> Series:
    """Fig. 3.5: SLL throughput per mix + round-robin throughput."""
    counts = _threads()
    ops = work_scale(80, 300)
    fig = Series("Fig 3.5 — SLL and RR throughput (K ops/s)", "#threads", counts)
    for mix in MIXES:
        for variant in ("lk", "am", "ams"):
            fig.add(f"{mix}/{variant}", [
                run_sorted_list(variant, mix, n, ops).throughput / 1e3
                for n in counts
            ])
    rounds = work_scale(60, 150)
    # rr/qd: queue-delegation-style conditional waiting is one broadcast
    # condition variable — behaviourally the baseline signaling mode
    for mech, label in (("explicit", "rr/lk"), ("autosynch", "rr/am"),
                        ("baseline", "rr/qd")):
        fig.add(label, [
            run_round_robin(mech, n, rounds).throughput / 1e3 for n in counts
        ])
    return fig.show()
