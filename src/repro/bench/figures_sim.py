"""Simulator reruns of the chapter-2 scaling figures at paper-scale thread
counts, plus ablation benches for the design choices DESIGN.md calls out.

The simulated machine (8 cores, fixed context-switch cost) regenerates the
*shape* of each figure deterministically — who wins, by what factor, and
where the curves diverge — which is exactly what the GIL prevents real
threads from showing on this host.
"""

from __future__ import annotations

from repro.bench.harness import Series, sim_thread_counts, work_scale
from repro.sim import (
    sim_active_queue,
    sim_bounded_buffer,
    sim_param_bounded_buffer,
    sim_pizza_store,
    sim_round_robin,
)


def sim_fig2_4_bounded_buffer() -> Series:
    """Fig. 2.4 on the simulated multicore (virtual time units)."""
    counts = sim_thread_counts()
    items = 40
    fig = Series("Fig 2.4 (simulated) — bounded-buffer virtual runtime",
                 "#prod/cons", counts)
    for mode in ("explicit", "baseline", "autosynch_t", "autosynch"):
        fig.add(mode, [
            sim_bounded_buffer(mode, n, n, max(2, items * 8 // n))["time"]
            for n in counts
        ])
    fig.notes = "deterministic DES; paper shape: baseline blows up, others track explicit"
    return fig.show()


def sim_fig2_6_round_robin() -> Series:
    """Fig. 2.6 on the simulated multicore."""
    counts = sim_thread_counts()
    rounds = 20
    fig = Series("Fig 2.6 (simulated) — round-robin virtual runtime",
                 "#threads", counts)
    for mode in ("explicit", "baseline", "autosynch_t", "autosynch"):
        fig.add(mode, [sim_round_robin(mode, n, rounds)["time"] for n in counts])
    fig.notes = "paper shape: explicit flat; autosynch_t grows with n; autosynch bounded"
    return fig.show()


def sim_fig2_9_param_bb() -> Series:
    """Fig. 2.9 on the simulated multicore."""
    counts = sim_thread_counts()
    fig = Series("Fig 2.9 (simulated) — parameterized BB virtual runtime",
                 "#consumers", counts)
    for mode in ("explicit", "autosynch"):
        fig.add(mode, [
            sim_param_bounded_buffer(mode, n, 10)["time"] for n in counts
        ])
    fig.notes = "paper shape: explicit (signalAll) degrades, autosynch stays flat"
    return fig.show()


def sim_fig2_10_context_switches() -> Series:
    """Fig. 2.10 on the simulated multicore: exact context-switch counts."""
    counts = sim_thread_counts()
    fig = Series("Fig 2.10 (simulated) — parameterized BB context switches",
                 "#consumers", counts)
    for mode in ("explicit", "autosynch"):
        fig.add(mode, [
            sim_param_bounded_buffer(mode, n, 10)["context_switches"]
            for n in counts
        ])
    fig.notes = "paper: 2.7M vs 5.4K at 256 consumers — orders-of-magnitude gap"
    return fig.show()


def sim_fig3_4_active_queue() -> Series:
    """Fig. 3.4 on the simulated multicore: delegation (AM) vs locking (LK).

    Recovers the chapter-3 headline the GIL erases from real threads: with
    local work to overlap and several cores, the delegated queue overtakes
    the lock-based one as threads grow."""
    counts = sim_thread_counts()
    ops = 20
    fig = Series("Fig 3.4 (simulated) — bounded queue virtual runtime",
                 "#threads", counts)
    for cap in (4, 16):
        for variant in ("lk", "am"):
            fig.add(f"cap{cap}/{variant}", [
                sim_active_queue(variant, n, ops, capacity=cap)["time"]
                for n in counts
            ])
    fig.notes = "paper shape: AM beats LK at small capacities once threads > cores"
    return fig.show()


def sim_fig4_7_pizza() -> Series:
    """Fig. 4.7 on the simulated multicore: coarse lock vs critical-clause.

    Recovers the chapter-4 headline: per-ingredient monitors + CC signaling
    let disjoint cooks overlap, beating the global lock as cooks grow."""
    counts = [c for c in sim_thread_counts() if c <= 64]
    pizzas = 10
    variants = ("gl", "as", "av", "cc")
    runs = {
        v: [sim_pizza_store(v, n, pizzas) for n in counts] for v in variants
    }
    fig = Series("Fig 4.7 (simulated) — pizza store virtual runtime",
                 "#cooks", counts)
    for v in variants:
        fig.add(v, [r["time"] for r in runs[v]])
    false_fig = Series("Fig 4.8 (simulated) — false evaluations (futile wakeups)",
                       "#cooks", counts)
    for v in variants:
        false_fig.add(v, [r["false_signals"] for r in runs[v]])
    false_fig.notes = "paper shape: AS blind-signals most of AS/AV/CC; GL broadcasts worst"
    fig.notes = "paper shape: GL wins only at low thread counts; AV/CC lead at scale"
    false_fig.show()
    return fig.show()


def sim_fig5_2_multicast() -> Series:
    """Fig. 5.2 on the simulated multicore: coarse lock vs selectone.

    Recovers the chapter-5 headline: synchronous composition over
    per-channel monitors beats the coarse-grained lock once clients scale."""
    from repro.sim import sim_multicast

    counts = [c for c in sim_thread_counts() if c <= 64]
    requests = 10
    fig = Series("Fig 5.2 (simulated) — multicast virtual runtime",
                 "#clients", counts)
    for variant in ("gl", "so"):
        fig.add(variant, [
            sim_multicast(variant, n, requests)["time"] for n in counts
        ])
    fig.notes = "paper shape: selectone composition beats the global lock"
    return fig.show()


def sim_table2_1() -> "object":
    """Table 2.1 on the simulated multicore: where the virtual time goes.

    Shows the paper's claim at full waiter counts: tagging collapses the
    relay search's predicate-evaluation time for a small tag-probe cost."""
    from repro.bench.harness import table

    n, rounds = 128, 10
    rows = []
    for mode in ("autosynch_t", "autosynch"):
        result = sim_round_robin(mode, n, rounds)
        cats = result["time_by_category"]
        blocked = result["blocked_time"]
        rows.append([
            mode,
            f"{blocked['wait']:.0f}",
            f"{blocked['lock']:.0f}",
            f"{cats.get('eval', 0.0):.0f}",
            f"{cats.get('tag', 0.0):.0f}",
            f"{result['time']:.0f}",
        ])
    return table(
        f"Table 2.1 (simulated) — virtual-time breakdown, round-robin x{n}",
        ["mechanism", "await", "lock wait", "pred eval", "tag mgr", "makespan"],
        rows,
        notes="paper: tagging cuts the relay-search (pred eval) share ~95%",
    )


def sim_fig2_5_h2o() -> Series:
    """Fig. 2.5 on the simulated multicore."""
    from repro.sim import sim_h2o

    counts = sim_thread_counts()
    molecules = 30
    fig = Series("Fig 2.5 (simulated) — H2O virtual runtime", "#H atoms", counts)
    for mode in ("explicit", "baseline", "autosynch_t", "autosynch"):
        fig.add(mode, [sim_h2o(mode, n, molecules)["time"] for n in counts])
    fig.notes = "paper shape: all mechanisms track each other except the baseline"
    return fig.show()


def sim_fig2_7_readers_writers() -> Series:
    """Fig. 2.7 on the simulated multicore."""
    from repro.sim import sim_readers_writers

    counts = [2, 4, 8, 16, 32]
    rounds = 8
    fig = Series("Fig 2.7 (simulated) — ticket R/W virtual runtime",
                 "#writers(x5 readers)", counts)
    for mode in ("explicit", "autosynch_t", "autosynch"):
        fig.add(mode, [
            sim_readers_writers(mode, w, 5 * w, rounds)["time"] for w in counts
        ])
    fig.notes = "paper shape: explicit steady; autosynch close; autosynch_t grows"
    return fig.show()


def sim_fig2_8_dining() -> Series:
    """Fig. 2.8 on the simulated multicore."""
    from repro.sim import sim_dining

    counts = sim_thread_counts()
    meals = 12
    fig = Series("Fig 2.8 (simulated) — dining philosophers virtual runtime",
                 "#philosophers", counts)
    for mode in ("explicit", "autosynch_t", "autosynch"):
        fig.add(mode, [sim_dining(mode, max(n, 2), meals)["time"] for n in counts])
    fig.notes = "paper shape: small explicit advantage; gap does not widen with n"
    return fig.show()


def sim_fig4_6_take_and_put() -> Series:
    """Fig. 4.6 on the simulated multicore: coarse vs fine-grained moves.

    In the paper's ample-buffer regime the condition is almost always true,
    so the figure reduces to locking structure: one global lock vs two
    id-ordered queue locks per move (the multisynch discipline all three
    signaling strategies share when waits are rare)."""
    from repro.sim import sim_take_and_put

    counts = [c for c in sim_thread_counts() if c <= 64]
    moves = 15
    fig = Series("Fig 4.6 (simulated) — atomic take&put virtual runtime",
                 "#threads", counts)
    for variant in ("gl", "fg"):
        fig.add(variant, [
            sim_take_and_put(variant, n, moves)["time"] for n in counts
        ])
    fig.notes = "paper shape: fine-grained multisynch moves beat the global lock"
    return fig.show()
