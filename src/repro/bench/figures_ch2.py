"""Figure generators for Chapter 2 (AutoSynch evaluation).

Each function regenerates one paper figure/table: same series, same x-axis,
at the active :func:`repro.bench.harness.scale`.
"""

from __future__ import annotations

from repro.bench.harness import Series, scale, table, thread_counts, work_scale
from repro.problems.bounded_buffer import run_bounded_buffer
from repro.problems.dining import run_dining_monitor
from repro.problems.h2o import run_h2o
from repro.problems.param_bounded_buffer import run_param_bounded_buffer
from repro.problems.readers_writers import run_readers_writers
from repro.problems.round_robin import run_round_robin
from repro.runtime import get_config

MECHANISMS = ("explicit", "baseline", "autosynch_t", "autosynch")
FAST_MECHS = ("explicit", "autosynch_t", "autosynch")   # figures that omit baseline


def fig2_4_bounded_buffer() -> Series:
    """Fig. 2.4: bounded-buffer runtime vs #producers/consumers."""
    counts = thread_counts()
    items = work_scale(150, 400)
    fig = Series("Fig 2.4 — bounded-buffer runtime (s)", "#prod/cons", counts)
    for mech in MECHANISMS:
        fig.add(mech, [
            run_bounded_buffer(mech, n, n, max(1, items // n), capacity=16).elapsed
            for n in counts
        ])
    return fig.show()


def fig2_5_h2o() -> Series:
    """Fig. 2.5: H2O runtime vs #H threads (one O thread)."""
    counts = thread_counts()
    molecules = work_scale(150, 600)
    fig = Series("Fig 2.5 — H2O runtime (s)", "#H atoms", counts)
    for mech in MECHANISMS:
        fig.add(mech, [run_h2o(mech, n, molecules).elapsed for n in counts])
    return fig.show()


def fig2_6_round_robin() -> Series:
    """Fig. 2.6: round-robin runtime vs #threads (baseline omitted, as in
    the paper: 'extremely inefficient in comparison')."""
    counts = thread_counts()
    rounds = work_scale(60, 150)
    fig = Series("Fig 2.6 — round-robin runtime (s)", "#threads", counts)
    for mech in FAST_MECHS:
        fig.add(mech, [run_round_robin(mech, n, rounds).elapsed for n in counts])
    return fig.show()


def fig2_7_readers_writers() -> Series:
    """Fig. 2.7: ticket readers/writers runtime; x = #writers, readers=5x."""
    counts = [2, 4, 8] if scale() == "quick" else [2, 4, 8, 16, 32, 64]
    rounds = work_scale(40, 100)
    fig = Series("Fig 2.7 — ticket readers/writers runtime (s)",
                 "#writers(x5 readers)", counts)
    for mech in FAST_MECHS:
        fig.add(mech, [
            run_readers_writers(mech, w, 5 * w, rounds).elapsed for w in counts
        ])
    return fig.show()


def fig2_8_dining() -> Series:
    """Fig. 2.8: dining philosophers runtime vs #philosophers."""
    counts = thread_counts()
    meals = work_scale(80, 200)
    fig = Series("Fig 2.8 — dining philosophers runtime (s)", "#phils", counts)
    for mech in FAST_MECHS:
        fig.add(mech, [run_dining_monitor(mech, n, meals).elapsed for n in counts])
    return fig.show()


def fig2_9_param_bounded_buffer() -> Series:
    """Fig. 2.9: parameterized bounded-buffer runtime vs #consumers (the
    workload whose explicit version needs signalAll)."""
    counts = thread_counts()
    batches = work_scale(25, 60)
    fig = Series("Fig 2.9 — parameterized bounded-buffer runtime (s)",
                 "#consumers", counts)
    for mech in ("explicit", "autosynch"):
        fig.add(mech, [
            run_param_bounded_buffer(mech, n, batches).elapsed for n in counts
        ])
    return fig.show()


def fig2_10_context_switches() -> Series:
    """Fig. 2.10: wakeup counts (context-switch proxy) for Fig. 2.9's runs."""
    counts = thread_counts()
    batches = work_scale(25, 60)
    fig = Series("Fig 2.10 — parameterized bounded-buffer wakeups",
                 "#consumers", counts,
                 )
    for mech in ("explicit", "autosynch"):
        fig.add(mech, [
            int(run_param_bounded_buffer(mech, n, batches).metrics["wakeups"])
            for n in counts
        ])
    fig.notes = "wakeups = threads woken by signaling (exact, deterministic)"
    return fig.show()


def fig2_11_rr_ratio() -> Series:
    """Fig. 2.11: round-robin runtime ratio (auto/explicit) vs delay time."""
    delays_us = [0, 1000, 2500, 5000] if scale() == "quick" else [0, 500, 1000, 2000, 3000, 4000, 5000]
    n = work_scale(8, 64)
    rounds = work_scale(40, 80)
    fig = Series("Fig 2.11 — round-robin runtime ratio vs delay", "delay (µs)", delays_us)
    base = {d: run_round_robin("explicit", n, rounds, delay=d / 1e6).elapsed
            for d in delays_us}
    for mech in ("autosynch", "autosynch_t"):
        fig.add(mech, [
            run_round_robin(mech, n, rounds, delay=d / 1e6).elapsed / max(base[d], 1e-9)
            for d in delays_us
        ])
    fig.notes = "ratio vs explicit-signal runtime; 1.0 = parity"
    return fig.show()


def fig2_12_rw_ratio() -> Series:
    """Fig. 2.12: ticket readers/writers runtime ratio vs delay time."""
    delays_us = [0, 1000, 2500, 5000] if scale() == "quick" else [0, 500, 1000, 2000, 3000, 4000, 5000]
    writers = work_scale(4, 64)
    rounds = work_scale(25, 60)
    fig = Series("Fig 2.12 — ticket R/W runtime ratio vs delay", "delay (µs)", delays_us)
    base = {
        d: run_readers_writers("explicit", writers, 5 * writers, rounds, delay=d / 1e6).elapsed
        for d in delays_us
    }
    for mech in ("autosynch", "autosynch_t"):
        fig.add(mech, [
            run_readers_writers(mech, writers, 5 * writers, rounds, delay=d / 1e6).elapsed
            / max(base[d], 1e-9)
            for d in delays_us
        ])
    fig.notes = "ratio vs explicit-signal runtime; 1.0 = parity"
    return fig.show()


def table2_1_cpu_usage() -> str:
    """Table 2.1: time breakdown (await / lock / relay / tag manager) for the
    round-robin pattern, measured by the framework's phase timers."""
    cfg = get_config()
    n = work_scale(16, 128)
    rounds = work_scale(40, 80)
    cfg.phase_timing = True
    try:
        rows = []
        for mech in ("autosynch_t", "autosynch"):
            result = run_round_robin(mech, n, rounds)
            m = result.metrics
            total = max(result.elapsed, 1e-9)
            rows.append([
                mech,
                f"{m['await_time']:.4f}s",
                f"{m['lock_time']:.4f}s",
                f"{m['relay_time']:.4f}s",
                f"{m['tag_time']:.4f}s",
                f"{result.elapsed:.4f}s",
                f"{100 * m['relay_time'] / total:.1f}%",
            ])
    finally:
        cfg.phase_timing = False
    return table(
        f"Table 2.1 — CPU usage, round-robin x{n}",
        ["mechanism", "await", "lock", "relay signal", "tag mgr", "wall", "relay %"],
        rows,
        notes="paper: tagging cuts relay-signal CPU ~95% for a small tag-mgmt cost",
    )
