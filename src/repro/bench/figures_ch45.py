"""Figure generators for Chapters 4 and 5 (multi-object sync + composition)."""

from __future__ import annotations

from repro.bench.harness import Series, scale, work_scale
from repro.problems.des import run_des
from repro.problems.dining import run_dining_multi
from repro.problems.genome import run_genome
from repro.problems.multicast import run_multicast
from repro.problems.pizza_store import run_pizza_store
from repro.problems.take_and_put import run_take_and_put


def _threads() -> list[int]:
    return [2, 4, 8] if scale() == "quick" else [2, 4, 8, 16, 32, 64, 80]


def fig4_3_dining() -> Series:
    """Fig. 4.3: dining philosophers throughput (K ops/s), FL / TM / MS."""
    counts = _threads()
    meals = work_scale(100, 400)
    fig = Series("Fig 4.3 — dining philosophers throughput (K ops/s)",
                 "#threads", counts)
    for variant in ("fl", "tm", "ms"):
        fig.add(variant, [
            run_dining_multi(variant, n, meals).throughput / 1e3 for n in counts
        ])
    return fig.show()


def fig4_4_genome() -> Series:
    """Fig. 4.4: genome+ runtime (s), FL / TM / MS."""
    counts = _threads()
    length = work_scale(1024, 4096)
    fig = Series("Fig 4.4 — genome+ runtime (s)", "#threads", counts)
    for variant in ("fl", "tm", "ms"):
        fig.add(variant, [
            run_genome(variant, n, genome_length=length).elapsed for n in counts
        ])
    return fig.show()


def fig4_6_take_and_put() -> Series:
    """Fig. 4.6: atomic take-and-put throughput (K ops/s), 5 variants."""
    counts = _threads()
    moves = work_scale(60, 250)
    n_queues = work_scale(16, 80)
    fig = Series("Fig 4.6 — atomic take&put throughput (K ops/s)",
                 "#threads", counts)
    for variant in ("gl", "tm", "as", "av", "cc"):
        fig.add(variant, [
            run_take_and_put(variant, n, moves, n_queues=n_queues).throughput / 1e3
            for n in counts
        ])
    fig.notes = "paper: AS wins here — big buffers make the condition almost always true"
    return fig.show()


def fig4_7_pizza() -> Series:
    """Fig. 4.7: pizza store throughput (K pizzas/s), 5 variants."""
    counts = _threads()
    pizzas = work_scale(15, 60)
    fig = Series("Fig 4.7 — pizza store throughput (K ops/s)", "#cooks", counts)
    for variant in ("gl", "tm", "as", "av", "cc"):
        fig.add(variant, [
            run_pizza_store(variant, n, pizzas).throughput / 1e3 for n in counts
        ])
    return fig.show()


def fig4_8_false_evaluations() -> Series:
    """Fig. 4.8: pizza store false evaluations (waiter re-checks that failed).

    Run with dependency tracking disabled: the paper's AS ≫ AV/CC gap is a
    property of *untracked* always-signal — with the read/write-set relay
    filter on, AS's blind re-evaluations collapse and the figure flattens
    (see the Fig 4.8 note in EXPERIMENTS.md; the A/B lives in
    benchmarks/test_fig4_8_false_eval.py).
    """
    from repro.runtime.config import get_config

    counts = _threads()
    pizzas = work_scale(15, 60)
    fig = Series("Fig 4.8 — pizza store false evaluations", "#cooks", counts)
    cfg = get_config()
    prior = cfg.track_dependencies
    cfg.track_dependencies = False
    try:
        for variant in ("as", "av", "cc"):
            fig.add(variant, [
                int(run_pizza_store(variant, n, pizzas).metrics["false_evals"])
                for n in counts
            ])
    finally:
        cfg.track_dependencies = prior
    fig.notes = "paper: AS needs 2-7x more evaluations than AV/CC"
    return fig.show()


def fig4_9_des() -> Series:
    """Fig. 4.9: discrete-event simulation throughput (K events/s)."""
    counts = _threads()
    events = work_scale(40, 150)
    fig = Series("Fig 4.9 — discrete-event simulation throughput (K ev/s)",
                 "#neighbors", counts)
    for variant in ("gl", "tm", "as", "av", "cc"):
        fig.add(variant, [
            run_des(variant, n, events).throughput / 1e3 for n in counts
        ])
    return fig.show()


def fig5_2_multicast() -> Series:
    """Fig. 5.2: multicast channels throughput (K msgs/s), 6 variants."""
    counts = _threads()
    requests = work_scale(40, 150)
    fig = Series("Fig 5.2 — multicast channels throughput (K msgs/s)",
                 "#clients", counts)
    for variant in ("gl", "tm", "as", "av", "cc", "am"):
        fig.add(variant, [
            run_multicast(variant, n, requests).throughput / 1e3 for n in counts
        ])
    return fig.show()
