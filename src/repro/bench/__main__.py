"""Regenerate the paper's tables and figures from the command line.

Usage::

    python -m repro.bench --list
    python -m repro.bench fig2_4 fig2_10 sim_fig2_6
    python -m repro.bench --all
    REPRO_BENCH_SCALE=full python -m repro.bench --all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable


def _registry() -> dict[str, Callable]:
    from repro.bench import ablations, figures_ch2, figures_ch3, figures_ch45, figures_sim

    return {
        "fig2_4": figures_ch2.fig2_4_bounded_buffer,
        "fig2_5": figures_ch2.fig2_5_h2o,
        "fig2_6": figures_ch2.fig2_6_round_robin,
        "fig2_7": figures_ch2.fig2_7_readers_writers,
        "fig2_8": figures_ch2.fig2_8_dining,
        "fig2_9": figures_ch2.fig2_9_param_bounded_buffer,
        "fig2_10": figures_ch2.fig2_10_context_switches,
        "fig2_11": figures_ch2.fig2_11_rr_ratio,
        "fig2_12": figures_ch2.fig2_12_rw_ratio,
        "table2_1": figures_ch2.table2_1_cpu_usage,
        "table3_1_2": figures_ch3.tables_3_1_and_3_2,
        "fig3_3": figures_ch3.fig3_3_psssp,
        "fig3_4": figures_ch3.fig3_4_bounded_queue,
        "fig3_5": figures_ch3.fig3_5_sll_rr,
        "fig4_3": figures_ch45.fig4_3_dining,
        "fig4_4": figures_ch45.fig4_4_genome,
        "fig4_6": figures_ch45.fig4_6_take_and_put,
        "fig4_7": figures_ch45.fig4_7_pizza,
        "fig4_8": figures_ch45.fig4_8_false_evaluations,
        "fig4_9": figures_ch45.fig4_9_des,
        "fig5_2": figures_ch45.fig5_2_multicast,
        "sim_fig2_4": figures_sim.sim_fig2_4_bounded_buffer,
        "sim_fig2_6": figures_sim.sim_fig2_6_round_robin,
        "sim_fig2_9": figures_sim.sim_fig2_9_param_bb,
        "sim_fig2_10": figures_sim.sim_fig2_10_context_switches,
        "sim_fig3_4": figures_sim.sim_fig3_4_active_queue,
        "sim_fig4_6": figures_sim.sim_fig4_6_take_and_put,
        "sim_fig4_7": figures_sim.sim_fig4_7_pizza,
        "sim_fig5_2": figures_sim.sim_fig5_2_multicast,
        "sim_table2_1": figures_sim.sim_table2_1,
        "sim_fig2_5": figures_sim.sim_fig2_5_h2o,
        "sim_fig2_7": figures_sim.sim_fig2_7_readers_writers,
        "sim_fig2_8": figures_sim.sim_fig2_8_dining,
        "ablation_combining": ablations.ablation_combining_batch,
        "ablation_av_cc": ablations.ablation_av_vs_cc,
        "ablation_scqueue": ablations.ablation_scqueue,
        "ablation_tags": ablations.ablation_tags,
        "ablation_stm_retry": ablations.ablation_stm_retry,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument("targets", nargs="*", help="figure names (see --list)")
    parser.add_argument("--list", action="store_true", help="list available targets")
    parser.add_argument("--all", action="store_true", help="run every target")
    parser.add_argument(
        "--report", action="store_true",
        help="combine benchmarks/results/*.txt into benchmarks/results/REPORT.md",
    )
    args = parser.parse_args(argv)

    registry = _registry()
    if args.list:
        for name in registry:
            print(name)
        return 0
    if args.report:
        return write_report()
    targets = list(registry) if args.all else args.targets
    if not targets:
        parser.print_help()
        return 2
    unknown = [t for t in targets if t not in registry]
    if unknown:
        print(f"unknown targets: {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in targets:
        registry[name]()
    return 0


def write_report() -> int:
    """Assemble every recorded figure into one markdown report."""
    import pathlib

    results = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    if not results.is_dir():
        print("no benchmarks/results directory — run the bench suite first",
              file=sys.stderr)
        return 1
    sections = sorted(results.glob("*.txt"))
    if not sections:
        print("benchmarks/results is empty — run the bench suite first",
              file=sys.stderr)
        return 1
    lines = [
        "# Regenerated evaluation figures",
        "",
        "One section per paper table/figure (plus ablations), produced by",
        "`pytest benchmarks/ --benchmark-only` at the scale recorded below.",
        "",
    ]
    for path in sections:
        lines.append(f"## {path.stem}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    out = results / "REPORT.md"
    out.write_text("\n".join(lines))
    print(f"wrote {out} ({len(sections)} sections)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
