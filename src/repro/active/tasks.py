"""Monitor tasks (Def. 10): a precondition plus a body.

A task is *executable* when its precondition holds against the current
monitor state; unexecutable tasks wait in the server's pending set until a
state change makes them executable.  Tasks carry the submitting worker's
identity (Rule 2 program order is per-worker) and an optional priority for
the Chapter-6 priority policy.

Task shells are pooled (mirroring the core layer's ``Waiter`` pool): the
executing server/combiner recycles a shell after collecting its future for
completion, and :meth:`MonitorTask.acquire` re-arms a recycled shell instead
of allocating.  Pool discipline — a shell is recycled only *after* it left
every queue/pending structure, and only by the executor; consequently
**callers must capture ``task.future`` before submitting** the task, because
the shell (and its ``future`` attribute) may be re-armed for an unrelated
call the moment the server completes it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Optional

from repro.active.futures import LightFuture
from repro.core.predicates import Predicate
from repro.runtime.atomics import AtomicCounter

#: global submission timestamps.  Rule 2 (per-worker program order) needs
#: every draw to be unique and ordered, so the draw goes through the
#: explicit atomics layer: on GIL builds this *is* the old ``next(count)``
#: (one atomic C call); on free-threaded builds it is a locked
#: fetch-and-add — the "GIL-atomic so the lock bought nothing" claim the
#: old comment made is true only under the GIL.
_seq = AtomicCounter(1)

#: recycled task shells — any thread may pop, executors append.  Single
#: deque operations are atomic on both builds (GIL, or PEP 703's
#: per-object container locks on free-threaded CPython).
_pool: deque["MonitorTask"] = deque()
_POOL_CAP = 256


#: while a task body runs, this holds the *submitting* worker's thread id —
#: the §6.2.2 answer to "Thread.currentThread() inside a delegated method"
_executing_worker = threading.local()


def current_worker() -> int:
    """The logical worker a critical section belongs to.

    Inside a delegated task this is the submitting worker's thread id (what
    the paper's ``Thread.currentThread()`` *intended*); elsewhere it is
    simply the calling thread's id.
    """
    worker = getattr(_executing_worker, "ident", None)
    return worker if worker is not None else threading.get_ident()


class MonitorTask:
    """One delegated critical-section execution request."""

    __slots__ = (
        "precondition", "body", "args", "kwargs", "future",
        "worker_id", "seq", "priority", "name", "retries_left",
    )

    def __init__(
        self,
        body: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        precondition: Optional[Predicate] = None,
        priority: int = 0,
        name: str = "",
        retries: int = 0,
    ):
        self.future = LightFuture()
        self._arm(body, args, kwargs, precondition, priority, name, retries)

    def _arm(self, body, args, kwargs, precondition, priority, name, retries) -> None:
        self.precondition = precondition
        self.body = body
        self.args = args
        self.kwargs = kwargs
        self.worker_id = threading.get_ident()
        self.seq = _seq.next()       # global submission timestamp (sub(t))
        self.priority = priority
        self.name = name or getattr(body, "__name__", "task")
        self.retries_left = retries  # §6.2.1: automatic re-tries on failure

    @classmethod
    def acquire(
        cls,
        body: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        precondition: Optional[Predicate] = None,
        priority: int = 0,
        name: str = "",
        retries: int = 0,
    ) -> "MonitorTask":
        """Pooled constructor: re-arm a recycled shell when one exists."""
        try:
            task = _pool.pop()
        except IndexError:
            return cls(body, args, kwargs, precondition=precondition,
                       priority=priority, name=name, retries=retries)
        task.future = LightFuture()
        task._arm(body, args, kwargs, precondition, priority, name, retries)
        return task

    def recycle(self) -> None:
        """Return this shell to the pool.

        Executor-only, after the task left every queue/pending structure and
        its future has been collected for completion.  Clears references so
        pooled shells pin neither bodies nor results.
        """
        self.precondition = None
        self.body = None
        self.args = ()
        self.kwargs = None
        self.future = None
        if len(_pool) < _POOL_CAP:
            _pool.append(self)

    def executable(self, monitor: Any) -> bool:
        """Is the precondition true in the current state?"""
        if self.precondition is None:
            return True
        return self.precondition.evaluate(monitor)

    def execute(self, monitor: Any) -> tuple[Any, Optional[BaseException]]:
        """Run the body; return ``(result, error)`` without touching the
        future — the server completes futures in batch after the combining
        batch, outside the monitor lock (amortized wakeups)."""
        _executing_worker.ident = self.worker_id
        try:
            return self.body(*self.args, **self.kwargs), None
        except BaseException as exc:  # noqa: BLE001 — delivered via future
            return None, exc
        finally:
            _executing_worker.ident = None

    def run(self, monitor: Any) -> Optional[BaseException]:
        """Execute and complete immediately (non-batched call sites: tests,
        the simulator).  Caller holds the monitor lock and has verified the
        precondition.  Returns the exception when the body failed (None on
        success); on failure the future is completed only when no retries
        remain."""
        result, error = self.execute(monitor)
        if error is not None:
            if self.retries_left <= 0:
                self.future.set_exception(error)
            return error
        self.future.set_result(result)
        return None

    def __repr__(self):
        return f"<MonitorTask {self.name} seq={self.seq} worker={self.worker_id}>"
