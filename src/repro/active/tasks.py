"""Monitor tasks (Def. 10): a precondition plus a body.

A task is *executable* when its precondition holds against the current
monitor state; unexecutable tasks wait in the server's pending set until a
state change makes them executable.  Tasks carry the submitting worker's
identity (Rule 2 program order is per-worker) and an optional priority for
the Chapter-6 priority policy.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Optional

from repro.active.futures import LightFuture
from repro.core.predicates import Predicate

_seq = itertools.count(1)
_seq_lock = threading.Lock()


def _next_seq() -> int:
    with _seq_lock:
        return next(_seq)


#: while a task body runs, this holds the *submitting* worker's thread id —
#: the §6.2.2 answer to "Thread.currentThread() inside a delegated method"
_executing_worker = threading.local()


def current_worker() -> int:
    """The logical worker a critical section belongs to.

    Inside a delegated task this is the submitting worker's thread id (what
    the paper's ``Thread.currentThread()`` *intended*); elsewhere it is
    simply the calling thread's id.
    """
    worker = getattr(_executing_worker, "ident", None)
    return worker if worker is not None else threading.get_ident()


class MonitorTask:
    """One delegated critical-section execution request."""

    __slots__ = (
        "precondition", "body", "args", "kwargs", "future",
        "worker_id", "seq", "priority", "name", "retries_left",
    )

    def __init__(
        self,
        body: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        precondition: Optional[Predicate] = None,
        priority: int = 0,
        name: str = "",
        retries: int = 0,
    ):
        self.precondition = precondition
        self.body = body
        self.args = args
        self.kwargs = kwargs
        self.future = LightFuture()
        self.worker_id = threading.get_ident()
        self.seq = _next_seq()       # global submission timestamp (sub(t))
        self.priority = priority
        self.name = name or getattr(body, "__name__", "task")
        self.retries_left = retries  # §6.2.1: automatic re-tries on failure

    def executable(self, monitor: Any) -> bool:
        """Is the precondition true in the current state?"""
        if self.precondition is None:
            return True
        return self.precondition.evaluate(monitor)

    def run(self, monitor: Any) -> Optional[BaseException]:
        """Execute the body; complete the future unless a retry is pending.

        Caller holds the monitor lock and has verified the precondition.
        Returns the exception when the body failed (None on success); the
        caller decides — based on ``retries_left`` and its exception handler
        — whether to re-enqueue or deliver the failure.
        """
        _executing_worker.ident = self.worker_id
        try:
            result = self.body(*self.args, **self.kwargs)
        except BaseException as exc:  # noqa: BLE001 — delivered via future
            if self.retries_left <= 0:
                self.future.set_exception(exc)
            return exc
        finally:
            _executing_worker.ident = None
        self.future.set_result(result)
        return None

    def __repr__(self):
        return f"<MonitorTask {self.name} seq={self.seq} worker={self.worker_id}>"
