"""ActiveMonitor: monitors as active artifacts (Chapter 3).

An :class:`ActiveMonitor` is an automatic-signal monitor that may own a
server thread.  Methods declared ``@asynchronous`` are delegated as monitor
tasks and return a :class:`~repro.active.futures.LightFuture` immediately;
``@synchronous`` methods (and methods that return values, which the paper
makes synchronous automatically) execute under the monitor lock as usual.

Program-order rules (Lemma 1):

* Rule 2 — each worker has at most one outstanding asynchronous task per
  monitor; submitting a second one first waits for the first.
* Rule 3 — invoking any method on a *different* monitor first evaluates the
  worker's outstanding future on the previous monitor.

Disable delegation globally with ``get_config().asynchronous_enabled = False``
(the paper's runtime flag) or per object with ``ActiveMonitor(mode="sync")``;
``mode="delegate"`` keeps delegation but makes every call block on its future
(the evaluation's *AMS* configuration).
"""

from __future__ import annotations

import functools
import threading
from typing import Any, Callable, Optional

from repro.active.futures import CompletedFuture, LightFuture
from repro.active.policies import Policy
from repro.active.server import MonitorServer
from repro.active.tasks import MonitorTask
from repro.core.monitor import Monitor, unmonitored
from repro.core.predicates import Predicate
from repro.runtime.config import config_snapshot
from repro.runtime.errors import BrokenMonitorError, MonitorError, TaskQueueFull

MODES = ("async", "delegate", "sync")

#: per-thread record of the worker's outstanding async future:
#: maps monitor id -> LightFuture, plus 'last' -> (monitor_id, future)
_worker_state = threading.local()


def _outstanding() -> dict[int, LightFuture]:
    table = getattr(_worker_state, "table", None)
    if table is None:
        table = {}
        _worker_state.table = table
    return table


def asynchronous(pre: Callable[..., Any] | None = None, priority: int = 0,
                 retries: int = 0):
    """Declare a monitor method asynchronous (delegated, returns a future).

    ``pre`` is the method's guard — the paper's leading ``waituntil``; it is
    called with the same arguments as the method and must be side-effect
    free.  ``priority`` feeds the Chapter-6 priority policy; ``retries``
    enables the §6.2.1 automatic re-try of failed tasks.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self: "ActiveMonitor", *args, **kwargs):
            return self._invoke(fn, args, kwargs, pre, priority, is_async=True,
                                retries=retries)

        wrapper._repro_wrapped = True  # keep MonitorMeta's hands off
        wrapper._repro_guard = pre
        wrapper._repro_async = True
        return wrapper

    return decorate


def synchronous(pre: Callable[..., Any] | None = None, priority: int = 0):
    """Declare a guarded synchronous monitor method (blocking, returns the
    value directly).  Equivalent to a method whose body starts with
    ``wait_until(pre)``."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self: "ActiveMonitor", *args, **kwargs):
            return self._invoke(fn, args, kwargs, pre, priority, is_async=False)

        wrapper._repro_wrapped = True
        wrapper._repro_guard = pre
        wrapper._repro_async = False
        return wrapper

    return decorate


class ActiveMonitor(Monitor):
    """A monitor object that can execute delegated tasks on its own thread."""

    def __init__(
        self,
        signaling: str = "autosynch",
        mode: str = "async",
        policy: Policy = Policy.SAFE,
        start_server: bool = True,
    ):
        super().__init__(signaling=signaling)
        if mode not in MODES:
            raise MonitorError(f"unknown ActiveMonitor mode {mode!r}")
        self._mode = mode
        self._server: Optional[MonitorServer] = None
        if mode != "sync" and config_snapshot().asynchronous_enabled and start_server:
            server = MonitorServer(self, policy)
            if server.start():
                self._server = server
        # after any synchronous section mutates state, pendings may have
        # become executable: kick the server on exit.
        self._exit_hooks.append(lambda _m: self._server and self._server.kick())
        # poisoning wakes the server so queued tasks fail fast with
        # BrokenMonitorError instead of sitting in a queue nobody drains
        self._break_hooks.append(lambda _m: self._server and self._server.kick())

    # ----------------------------------------------------------------- invoke
    def _invoke(self, fn, args, kwargs, pre, priority, is_async: bool,
                retries: int = 0):
        # fail-fast for delegated calls, which bypass _monitor_enter: a
        # broken monitor must reject submissions, not queue them (one load
        # + branch on the delegation hot path)
        broken = self._broken
        if broken is not None:
            raise BrokenMonitorError(f"{self!r} is broken", broken)
        self._honor_rule3()
        server = self._server
        if server is None or not server.alive:
            return self._run_sync(fn, args, kwargs, pre, wrap_future=is_async)
        if is_async:
            self._honor_rule2()
            predicate = self._guard_predicate(pre, args, kwargs)
            task = MonitorTask.acquire(
                functools.partial(fn, self), (*args,), dict(kwargs),
                precondition=predicate, priority=priority,
                name=getattr(fn, "__name__", "task"), retries=retries,
            )
            # capture before submit: the pooled shell may be recycled (and
            # re-armed for an unrelated call) the moment the server runs it
            future = task.future
            server.submit(task)
            table = _outstanding()
            table[self.monitor_id] = future
            _worker_state.last = (self.monitor_id, future)
            return future if self._mode == "async" else _evaluated(future)
        # synchronous guarded method: direct execution under the lock
        return self._run_sync(fn, args, kwargs, pre, wrap_future=False)

    def _run_sync(self, fn, args, kwargs, pre, wrap_future: bool):
        self._monitor_enter()
        try:
            if pre is not None:
                # monlint requires guards pure by contract (docs/analysis.md)
                self.wait_until(lambda: pre(self, *args, **kwargs))  # monlint: disable=W001
            result = fn(self, *args, **kwargs)
        except BaseException as exc:
            if wrap_future:
                self._monitor_exit()
                return CompletedFuture(error=exc)
            raise
        finally:
            if not wrap_future:
                self._monitor_exit()
        if wrap_future:
            self._monitor_exit()
            return CompletedFuture(result)
        return result

    def _guard_predicate(self, pre, args, kwargs) -> Optional[Predicate]:
        if pre is None:
            return None
        return Predicate(lambda: pre(self, *args, **kwargs))

    @unmonitored
    def submit_nowait(self, method: str, /, *args, **kwargs) -> LightFuture:
        """Delegate ``method`` without ever blocking the calling thread.

        The asyncio frontend's entry point (:mod:`repro.aio`): one event
        loop multiplexes thousands of logical clients, so the thread-local
        program-order bookkeeping (Rules 2/3 — one outstanding task *per OS
        thread*) is deliberately bypassed; per-client program order is the
        caller's own ``await`` chain.  Combining is bypassed too: the
        combiner executes task bodies on the *submitting* thread under the
        monitor lock, which would stall the event loop.  The task is
        enqueued nonblockingly and the server woken.

        Raises :class:`TaskQueueFull` when the bounded task queue is full
        (the blocking path would park; a coroutine backs off and retries),
        :class:`BrokenMonitorError` when the monitor is poisoned, and
        :class:`MonitorError` when ``method`` is not ``@asynchronous`` or
        no live server exists.
        """
        broken = self._broken
        if broken is not None:
            raise BrokenMonitorError(f"{self!r} is broken", broken)
        wrapper = getattr(type(self), method, None)
        if wrapper is None or not getattr(wrapper, "_repro_async", False):
            raise MonitorError(
                f"submit_nowait requires an @asynchronous method, "
                f"got {method!r}")
        server = self._server
        if server is None or not server.alive:
            raise MonitorError(
                f"submit_nowait on {self!r} needs a live server "
                f"(mode={self._mode!r}); use the blocking frontend instead")
        fn = wrapper.__wrapped__          # functools.wraps keeps the raw body
        pre = wrapper._repro_guard
        predicate = self._guard_predicate(pre, args, kwargs)
        task = MonitorTask.acquire(
            functools.partial(fn, self), (*args,), dict(kwargs),
            precondition=predicate,
            name=getattr(fn, "__name__", "task"),
        )
        future = task.future   # capture before enqueue (pooled shell)
        if not server.queue.try_put(task):
            task.recycle()
            raise TaskQueueFull(
                f"task queue of {self!r} is full")
        if server._stop:       # same submit/stop race handling as submit()
            server.drain()
        server._wake.set()     # wake the server thread; never combine here
        return future

    # ------------------------------------------------------------ order rules
    def _honor_rule2(self) -> None:
        """One outstanding asynchronous task per worker per monitor."""
        future = _outstanding().get(self.monitor_id)
        if future is not None and not future.done():
            _swallow(future)

    def _honor_rule3(self) -> None:
        """Complete the worker's outstanding task on any *other* monitor."""
        last = getattr(_worker_state, "last", None)
        if last is None:
            return
        mon_id, future = last
        if mon_id != self.monitor_id and not future.done():
            _swallow(future)

    # -------------------------------------------------------------- lifecycle
    @property
    def server(self) -> Optional[MonitorServer]:
        return self._server

    @property
    def is_active(self) -> bool:
        """True when delegation is live (a server thread exists)."""
        return self._server is not None and self._server.alive

    @unmonitored
    def shutdown(self) -> None:
        """Stop the server thread (idempotent); the monitor keeps working in
        synchronous mode afterwards.

        Propagates :class:`~repro.runtime.errors.TaskError` when the server
        thread is wedged and fails to stop — but detaches it regardless, so
        subsequent calls run synchronously instead of feeding a dead queue.
        """
        if self._server is not None:
            try:
                self._server.stop()
            finally:
                self._server = None

    @unmonitored
    def flush(self, timeout: float | None = 10.0, cancel=None) -> None:
        """Block until every task submitted so far has executed.

        Must not hold the monitor lock while waiting (the server needs it),
        hence ``@unmonitored``.

        The flush sentinel is recorded as this worker's outstanding task
        *before* blocking: if ``get`` times out (or is cancelled), Rule 2
        still knows about the in-flight sentinel, and the worker's next
        submission to this monitor first waits for it — program order is
        preserved across an abandoned flush instead of silently leaking an
        untracked task.
        """
        server = self._server
        if server is None:
            return
        sentinel = MonitorTask.acquire(lambda: None, (), {}, name="flush")
        future = sentinel.future   # capture before submit (pooled shell)
        server.submit(sentinel)
        table = _outstanding()
        table[self.monitor_id] = future
        _worker_state.last = (self.monitor_id, future)
        future.get(timeout, cancel)


def _evaluated(future: LightFuture) -> LightFuture:
    """Force evaluation (AMS mode) but still hand back the future."""
    _swallow(future)
    return future


def _swallow(future: LightFuture) -> None:
    """Wait for a future, discarding its result; its error (if any) is left
    for the owner to observe via ``get``/``exception``."""
    try:
        future.get()
    except Exception:
        pass
