"""Monitor-thread management (§3.3.4).

Spawning a server thread per monitor object would sink programs that create
many monitors, so the registry caps the number of live servers.  The cap is
either user-provided or derived from hardware availability; when the cap is
reached, new ActiveMonitors (and monitors whose server was denied) fall back
to conventional synchronous execution — which, per the paper, "only disables
the asynchronous executions … the framework can still be used".
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING

from repro.runtime.config import get_config

if TYPE_CHECKING:  # pragma: no cover
    from repro.active.server import MonitorServer


class ServerRegistry:
    """Process-global accounting of live monitor server threads."""

    def __init__(self):
        self._lock = threading.Lock()
        self._servers: "weakref.WeakSet[MonitorServer]" = weakref.WeakSet()

    def try_register(self, server: "MonitorServer") -> bool:
        """Reserve a server slot; False when the hardware cap is reached."""
        cap = get_config().effective_server_cap()
        with self._lock:
            live = sum(1 for s in self._servers if s.alive)
            if live >= cap:
                return False
            self._servers.add(server)
            return True

    def unregister(self, server: "MonitorServer") -> None:
        with self._lock:
            self._servers.discard(server)

    def live_count(self) -> int:
        with self._lock:
            return sum(1 for s in self._servers if s.alive)

    def shutdown_all(self) -> None:
        with self._lock:
            servers = list(self._servers)
        for server in servers:
            server.stop()


registry = ServerRegistry()
