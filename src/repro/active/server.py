"""The monitor server thread: delegated + combined task execution (§3.3).

Rules 1-3 (the paper's execution model) map onto this implementation:

* **Rule 1 (mutex invariant)** — every task body runs under the monitor's
  lock, whether the server or a combining worker executes it.
* **Rule 2 (per-worker program order)** — the task queue is FIFO and a
  worker may have at most one outstanding asynchronous task (enforced in
  :mod:`repro.active.activemonitor`), so a worker's tasks are executed in
  submission order.
* **Rule 3 (cross-monitor order)** — before invoking a method on a
  *different* monitor, a worker first evaluates its outstanding future
  (also enforced in activemonitor).

Unexecutable tasks (precondition false, Def. 10) move to a pending list;
after every state change the server re-scans pendings under the configured
policy.  When there is nothing to do the server parks on an event instead of
busy-waiting — the paper stresses that, unlike prior combining schemes, no
thread ever spins.

Throughput structure of the drain path (the delegation fast path):

* the queue is emptied with :meth:`SingleConsumerBoundedQueue.drain_to` —
  one shared-counter touch per stolen batch (take-count strategy);
* futures are **completed in batch, outside the monitor lock**, after the
  combining batch finishes: waiters wake into an uncontended monitor
  instead of colliding with the executor, and per-task signaling cost is
  amortized across the batch;
* completed task shells are recycled to the :mod:`repro.active.tasks` pool
  (executor-only, after their future has been collected).

Shutdown is serialized with combining through the monitor lock: ``drain``
runs under it and ``_try_combine`` re-checks ``_stop`` after acquiring, so a
worker that becomes the combiner while ``stop()`` is draining can no longer
execute a task after the server declared itself drained.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Optional

from repro.active.management import registry
from repro.active.policies import Policy, select_task
from repro.active.scqueue import SingleConsumerBoundedQueue
from repro.active.tasks import MonitorTask
from repro.core.monitor import _CONTROL_FLOW_EXC as _NO_POISON
from repro.resilience import chaos as _chaos
from repro.runtime.config import config_snapshot, get_config
from repro.runtime.errors import BrokenMonitorError, TaskError

if TYPE_CHECKING:  # pragma: no cover
    from repro.active.activemonitor import ActiveMonitor


def _complete(completions: list) -> None:
    """Deliver a batch of future completions (caller dropped the lock)."""
    for future, value, error in completions:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(value)


class MonitorServer:
    """Owns the task queue and the (optional) server thread of one monitor."""

    def __init__(self, monitor: "ActiveMonitor", policy: Policy = Policy.SAFE):
        self.monitor = monitor
        self.policy = policy
        cfg = get_config()
        self.queue = SingleConsumerBoundedQueue(cfg.task_queue_capacity)
        self.pending: list[MonitorTask] = []   # unexecutable tasks, FIFO
        self._wake = threading.Event()
        self._stop = False
        self.alive = False
        self._thread: Optional[threading.Thread] = None
        self.exception_log: list[BaseException] = []
        #: §6.2.1 hook: called with (task, exception) after a task body
        #: fails; exceptions it raises are swallowed (the future already
        #: carries the original failure)
        self.exception_handler = None
        #: every exception that escaped the server *loop* (thread death) —
        #: distinct from exception_log, which records task-body failures
        #: the loop survived
        self.death_log: list[Optional[BaseException]] = []
        #: optional :class:`~repro.resilience.ServerSupervisor`; when set,
        #: the death handler asks it to restart the thread after failing
        #: the in-flight futures fast
        self.supervisor = None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> bool:
        """Spawn the server thread if the registry grants a slot."""
        if not registry.try_register(self):
            return False
        self.alive = True
        self._thread = threading.Thread(
            target=self._run, name=f"monitor-server-{self.monitor.monitor_id}",
            daemon=True,
        )
        self._thread.start()
        return True

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the server thread and fail any stranded tasks.

        Raises :class:`TaskError` when the thread does not exit within
        ``timeout`` — a wedged server (e.g. a task body blocked forever)
        must not be reported as a clean shutdown.  In that case stranded
        futures are *not* drained here: the wedged thread may hold the
        monitor lock, and draining would wedge this caller too.
        """
        self._stop = True
        self._wake.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)
            if thread.is_alive():
                self.alive = False
                registry.unregister(self)
                raise TaskError(
                    f"monitor server thread failed to stop within {timeout}s "
                    f"(wedged in a task body?)", None)
        self.alive = False
        registry.unregister(self)
        self.drain()

    def restart(self) -> bool:
        """Respawn the server thread after a death (supervision path).

        No-op returning False when the server was stopped deliberately or
        is already running."""
        if self._stop or self.alive:
            return False
        started = self.start()
        if started:
            # re-scan anything submitted while the server was down
            self._wake.set()
        return started

    # ------------------------------------------------------------ submission
    def submit(self, task: MonitorTask) -> None:
        """Enqueue a task; try combining if the server looks idle.

        Note: submission accounting (``tasks_submitted``) happens on the
        consumer side when the executor drains the queue — exact, and free
        of producer-side lock traffic."""
        self.queue.put(task)
        if self._stop:
            # shutdown raced this submission: fail the task now rather than
            # stranding its future (drain is idempotent and lock-serialized)
            self.drain()
            return
        if self._try_combine():
            return
        self._wake.set()

    def _try_combine(self) -> bool:
        """Worker-side combining (§3.3.2): if the monitor lock is free, this
        worker becomes the combiner and drains up to ``combining_batch``
        tasks before releasing — an uncontended acquisition in most cases."""
        monitor = self.monitor
        lock = monitor._lock  # monlint: disable=W004 — combiner protocol owns the lock
        if not lock.acquire(blocking=False):
            return False
        completions: list = []
        try:
            if self._stop:
                # shutdown owns the queue now; don't execute behind its back
                return False
            monitor._depth += 1
            executed = 0
            try:
                # snapshot read: _try_combine runs on every task submission
                executed, completions = self._drain_batch(
                    config_snapshot().combining_batch)
            finally:
                monitor._depth -= 1
                monitor._generation += 1   # task bodies mutate monitor state
                # one relay per batch: the task bodies' writes accumulated
                # in monitor._dirty, so this flushes the *union* of the
                # batch's dirty sets — untagged waiters are re-evaluated
                # once per batch, not once per task
                monitor._cond_mgr.relay_signal()
            if executed:
                monitor._metrics.tasks_combined += executed  # lock held
            return True
        finally:
            lock.release()
            if completions:
                _complete(completions)
            if len(self.queue) or self.pending:
                self._wake.set()

    # ---------------------------------------------------------- server loop
    def _run(self) -> None:
        monitor = self.monitor
        try:
            while not self._stop:
                self._wake.wait()
                self._wake.clear()
                if self._stop:
                    break
                if _chaos.enabled:
                    # fires outside the monitor lock: an injected kill here
                    # dies cleanly through the death handler without
                    # wedging the monitor
                    _chaos.fire("server_loop", self)
                completions: list = []
                with monitor._lock:  # monlint: disable=W004 — server thread is the monitor's executor
                    monitor._depth += 1
                    try:
                        _, completions = self._drain_batch(None)
                    finally:
                        monitor._depth -= 1
                        monitor._generation += 1
                        # batch-unioned dirty flush, as in _try_combine
                        monitor._cond_mgr.relay_signal()
                if completions:
                    _complete(completions)
        except BaseException as exc:  # noqa: BLE001 — thread death handler
            self._on_death(exc)
            return
        self.drain()

    def _on_death(self, exc: Optional[BaseException]) -> None:
        """The server thread died: fail fast, then (maybe) restart.

        Runs on the dying thread itself, or on a polling thread that
        noticed the corpse (:meth:`ServerSupervisor.check`).  Every queued
        and in-flight future is failed *immediately* with a
        :class:`TaskError` carrying the death cause — workers blocked in
        ``future.get()`` observe the failure instead of hanging — and then
        an attached supervisor gets the chance to restart the thread.
        """
        self.alive = False
        self.death_log.append(exc)
        registry.unregister(self)
        self.drain(lambda: TaskError("monitor server died", exc))
        supervisor = self.supervisor
        if supervisor is not None and not self._stop:
            try:
                supervisor.handle_death(exc)
            except Exception:  # noqa: BLE001 — a broken supervisor must not
                pass           # turn a handled death into an unhandled one

    def _drain_batch(self, limit: Optional[int]) -> tuple[int, list]:
        """Run tasks (queue + pendings) until quiescent or ``limit`` reached.

        Caller holds the monitor lock.  Pendings are re-scanned after every
        execution because any run may enable a parked precondition.  Returns
        ``(executed, completions)``; the caller delivers the completions
        after releasing the lock.
        """
        monitor = self.monitor
        metrics = monitor._metrics
        pending = self.pending
        executed = 0
        completions: list = []
        while limit is None or executed < limit:
            broken = monitor._broken
            if broken is not None:
                # poisoned monitor: running task bodies on corrupt state is
                # exactly what poisoning forbids — fail every queued and
                # pending future fast instead (docs/robustness.md)
                pulled = self.queue.drain_to(pending)
                if pulled:
                    metrics.tasks_submitted += pulled
                for task in pending:
                    completions.append((task.future, None, BrokenMonitorError(
                        f"{monitor!r} is broken", broken)))
                    task.recycle()
                metrics.futures_failed_fast += len(pending)
                pending.clear()
                break
            # pull everything currently queued into the pending list, which
            # then serves as the uniform candidate set for the policy
            pulled = self.queue.drain_to(pending)
            if pulled:
                metrics.tasks_submitted += pulled
                metrics.steal_batches += 1
                metrics.steal_items += pulled
            task = select_task(self.policy, pending, monitor)
            if task is None:
                break
            pending.remove(task)
            result, error = task.execute(monitor)
            if error is not None:
                self.exception_log.append(error)
                if self.exception_handler is not None:
                    try:
                        self.exception_handler(task, error)
                    except Exception:  # noqa: BLE001 — hook must not kill us
                        pass
                if task.retries_left > 0:
                    task.retries_left -= 1
                    pending.append(task)   # §6.2.1 automatic re-try
                else:
                    completions.append((task.future, None, error))
                    task.recycle()
                    # §6.2.1: a failed task body may have torn the invariant
                    # mid-mutation, same as an escaping exception in a
                    # synchronous critical section (retries exhaust first —
                    # a retried task gets its chance to repair)
                    if (config_snapshot().poison_on_exception
                            and not isinstance(error, _NO_POISON)):
                        monitor.mark_broken(error)
            else:
                completions.append((task.future, result, None))
                task.recycle()
            executed += 1
        return executed, completions

    def drain(self, error_factory: Optional[Callable[[], BaseException]] = None,
              ) -> int:
        """Fail any tasks stranded by shutdown so futures never hang.

        Runs under the monitor lock to serialize with an in-flight combiner
        (which re-checks ``_stop`` after acquiring): once drain completes,
        no stranded task can still be executed.  ``error_factory`` overrides
        the stock shutdown error (the death handler passes one that carries
        the death cause); when it is given, failed futures are counted in
        the ``futures_failed_fast`` metric.  Returns the number of futures
        failed."""
        stranded: list[MonitorTask] = []
        with self.monitor._lock:  # monlint: disable=W004 — shutdown serialization
            pulled = self.queue.drain_to(stranded)
            if pulled:
                self.monitor._metrics.tasks_submitted += pulled
            stranded.extend(self.pending)
            self.pending.clear()
        failed = 0
        for task in stranded:
            future = task.future
            if not future.done():
                if error_factory is not None:
                    future.set_exception(error_factory())
                else:
                    future.set_exception(RuntimeError("monitor server stopped"))
                failed += 1
            task.recycle()
        if failed and error_factory is not None:
            self.monitor._metrics.add("futures_failed_fast", failed)
        return failed

    def kick(self) -> None:
        """Wake the server to re-scan pendings (used by exit hooks after
        synchronous state changes)."""
        if self.pending or len(self.queue):
            self._wake.set()
