"""Lightweight futures for delegated monitor tasks.

The paper replaces Java's heavyweight ``FutureTask`` with "a lightweight
version of future objects that are shared between only one worker thread and
the server" (§3.3.2), using volatile fields and ``park``/``unpark``.  The
Python analogue: plain slot attributes for the value/state hand-off and a
condition variable allocated **lazily**, only when a consumer actually
blocks in :meth:`get`.  The dominant pipeline case — submit, do other work,
``get`` after the server already completed the task — therefore allocates no
synchronization object at all, and the producer's completion path is a
couple of attribute stores plus one branch.

Ordering argument (single producer): ``set_result`` stores the value, then
the state, then reads ``_cv``.  A consumer that installs a CV *after* that
read necessarily re-checks ``_state`` afterwards and sees the completion; a
consumer that installed it *before* is notified under the CV.  Either way no
wakeup is lost.

Free-threading contract (no-GIL audit, docs/performance.md): the lock-free
hand-off is exactly the Java volatile pattern the paper uses, and it stays
sound without the GIL because CPython's free-threaded builds give single
attribute stores/loads atomic pointer semantics with release/acquire
ordering (PEP 703) — the value-before-state publication order means a
consumer that acquire-loads ``_state == DONE`` observes the value store
that release-preceded it.  This is message-passing, not a store-load
(Dekker) pattern, so no fence beyond release/acquire is needed; the
blocking path synchronizes through the CV's own lock as usual.  No
primitive from :mod:`repro.runtime.atomics` is required here — the audit's
conclusion, recorded so nobody "fixes" this with a per-future lock.

Done callbacks (:meth:`LightFuture.add_done_callback`) follow the *same*
publication order: the producer stores the value, then the state, then
reads ``_callbacks``.  A consumer that registers a callback after that
read re-checks ``_state`` afterwards (under the install lock) and fires
the callback itself; a consumer that registered before is drained by the
producer.  Both drains take-and-clear the list under the install lock, so
every callback fires exactly once — the hand-off is the ``_cv`` pattern
with a callback list in place of a condition variable, and the asyncio
bridge (:mod:`repro.aio`) builds awaitable futures on top of it with zero
polling.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

from repro.runtime.errors import TaskError, WaitCancelledError, WaitTimeoutError

_PENDING = 0
_DONE = 1
_FAILED = 2

#: serializes lazy CV installation when several threads block on one future
#: (outside the paper's SPSC contract, but cheap to make safe — the lock is
#: only touched by consumers that actually block)
_cv_install_lock = threading.Lock()


class LightFuture:
    """Single-producer / single-consumer future (multi-consumer safe)."""

    __slots__ = ("_state", "_value", "_error", "_cv", "_callbacks")

    def __init__(self):
        self._state = _PENDING
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._cv: Optional[threading.Condition] = None
        self._callbacks: Optional[list] = None

    # -- producer side --------------------------------------------------------
    def set_result(self, value: Any) -> None:
        self._value = value
        self._state = _DONE          # value before state: done ⇒ value visible
        cv = self._cv
        if cv is not None:
            with cv:
                cv.notify_all()
        if self._callbacks is not None:
            self._drain_callbacks()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._state = _FAILED
        cv = self._cv
        if cv is not None:
            with cv:
                cv.notify_all()
        if self._callbacks is not None:
            self._drain_callbacks()

    def _drain_callbacks(self) -> None:
        # take-and-clear under the install lock: whichever side (producer or
        # a late add_done_callback) takes the list is the one that fires it
        with _cv_install_lock:
            cbs = self._callbacks
            self._callbacks = None
        if cbs:
            for cb in cbs:
                try:
                    cb(self)
                except Exception:  # noqa: BLE001 — a consumer callback must
                    pass           # never kill the completing server thread

    # -- consumer side ---------------------------------------------------------
    def done(self) -> bool:
        return self._state != _PENDING

    def get(self, timeout: float | None = None, cancel=None) -> Any:
        """Evaluate the future — blocking until the task completes.

        Raises :class:`TaskError` wrapping the task's exception if it failed,
        :class:`WaitTimeoutError` (a ``TimeoutError`` subclass) if ``timeout``
        elapses first, and :class:`WaitCancelledError` when the ``cancel``
        token fires while blocked.  A timed-out or cancelled ``get`` leaves
        the future intact: it may complete later and be re-collected.
        """
        if self._state == _PENDING:
            self._block(timeout, cancel)
        if self._state == _FAILED:
            raise TaskError("asynchronous monitor task failed", self._error) from self._error
        return self._value

    def _block(self, timeout: float | None, cancel=None) -> None:
        cv = self._cv
        if cv is None:
            with _cv_install_lock:
                cv = self._cv
                if cv is None:
                    cv = threading.Condition()
                    self._cv = cv
        wake_cb = None
        if cancel is not None:
            def wake_cb() -> None:
                with cv:
                    cv.notify_all()
            cancel.add_callback(wake_cb)
        try:
            with cv:
                deadline = None if timeout is None else time.monotonic() + timeout
                while self._state == _PENDING:
                    if cancel is not None and cancel.cancelled():
                        raise WaitCancelledError(
                            "future wait cancelled", cancel.reason)
                    if deadline is None:
                        cv.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise WaitTimeoutError(
                                "future not completed within timeout")
                        cv.wait(remaining)
        finally:
            if wake_cb is not None:
                cancel.remove_callback(wake_cb)

    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` once the future completes (or immediately).

        The callback runs on whichever thread completes the future — for
        delegated tasks, the server/combiner thread — or synchronously on
        the registering thread when the future is already done.  Callbacks
        must therefore be cheap and non-blocking; the asyncio adapter
        (:func:`repro.aio.as_asyncio`) uses ``loop.call_soon_threadsafe``
        for exactly this reason.  Exceptions raised by ``fn`` are swallowed
        (they must not kill the completing server thread).

        Exactly-once delivery under the value-before-state contract: the
        registration appends under the install lock and re-checks
        ``_state``; the producer stores the state before reading
        ``_callbacks``.  Whichever side observes the completed registration
        takes the list (under the lock) and fires it.
        """
        fire = None
        with _cv_install_lock:
            if self._state != _PENDING:
                # already complete: take any earlier registrations too, so
                # the racing producer drain can't interleave out of order
                fire = self._callbacks or []
                fire.append(fn)
                self._callbacks = None
            else:
                cbs = self._callbacks
                if cbs is None:
                    cbs = []
                    self._callbacks = cbs
                cbs.append(fn)
        if fire is not None:
            for cb in fire:
                try:
                    cb(self)
                except Exception:  # noqa: BLE001 — see _drain_callbacks
                    pass

    def exception(self) -> Optional[BaseException]:
        return self._error if self._state == _FAILED else None

    def __repr__(self):
        state = {_PENDING: "pending", _DONE: "done", _FAILED: "failed"}[self._state]
        return f"<LightFuture {state}>"


class CompletedFuture(LightFuture):
    """A future born completed — returned by synchronous fallback paths so
    call sites can treat every method invocation uniformly."""

    def __init__(self, value: Any = None, error: BaseException | None = None):
        super().__init__()
        if error is not None:
            self.set_exception(error)
        else:
            self.set_result(value)
