"""Lightweight futures for delegated monitor tasks.

The paper replaces Java's heavyweight ``FutureTask`` with "a lightweight
version of future objects that are shared between only one worker thread and
the server" (§3.3.2), using volatile fields and ``park``/``unpark``.  The
Python analogue is a single Event plus plain attributes: exactly one producer
(the executing thread) and one consumer (the submitting worker).
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.runtime.errors import TaskError

_PENDING = 0
_DONE = 1
_FAILED = 2


class LightFuture:
    """Single-producer / single-consumer future."""

    __slots__ = ("_event", "_state", "_value", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._state = _PENDING
        self._value: Any = None
        self._error: Optional[BaseException] = None

    # -- producer side --------------------------------------------------------
    def set_result(self, value: Any) -> None:
        self._value = value
        self._state = _DONE
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._state = _FAILED
        self._event.set()

    # -- consumer side ---------------------------------------------------------
    def done(self) -> bool:
        return self._state != _PENDING

    def get(self, timeout: float | None = None) -> Any:
        """Evaluate the future — blocking until the task completes.

        Raises :class:`TaskError` wrapping the task's exception if it failed,
        and ``TimeoutError`` if ``timeout`` elapses first.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("future not completed within timeout")
        if self._state == _FAILED:
            raise TaskError("asynchronous monitor task failed", self._error) from self._error
        return self._value

    def exception(self) -> Optional[BaseException]:
        return self._error if self._state == _FAILED else None

    def __repr__(self):
        state = {_PENDING: "pending", _DONE: "done", _FAILED: "failed"}[self._state]
        return f"<LightFuture {state}>"


class CompletedFuture(LightFuture):
    """A future born completed — returned by synchronous fallback paths so
    call sites can treat every method invocation uniformly."""

    def __init__(self, value: Any = None, error: BaseException | None = None):
        super().__init__()
        if error is not None:
            self.set_exception(error)
        else:
            self.set_result(value)
