"""ActiveMonitor: asynchronous monitor method executions (Chapter 3)."""

from repro.active.activemonitor import ActiveMonitor, asynchronous, synchronous
from repro.active.futures import CompletedFuture, LightFuture
from repro.active.management import ServerRegistry, registry
from repro.active.policies import Policy, select_task
from repro.active.scqueue import AtomicInteger, SingleConsumerBoundedQueue
from repro.active.server import MonitorServer
from repro.active.tasks import MonitorTask, current_worker

__all__ = [
    "ActiveMonitor",
    "asynchronous",
    "synchronous",
    "LightFuture",
    "CompletedFuture",
    "MonitorTask",
    "current_worker",
    "MonitorServer",
    "SingleConsumerBoundedQueue",
    "AtomicInteger",
    "Policy",
    "select_task",
    "ServerRegistry",
    "registry",
]
