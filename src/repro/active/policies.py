"""Task-selection policies (Chapter 6.1: safe / fairness / priority).

Given the set of *executable* candidates (precondition true in the current
state), a policy picks which task the server runs next:

* ``SAFE`` (Def. 14)  — any executable task; we take the first found, which
  maximizes throughput (the Chapter-3 default);
* ``FAIRNESS`` (Def. 15) — the executable task with the earliest submission
  timestamp, preventing starvation and stale reads;
* ``PRIORITY`` (Def. 16) — the executable task with the highest priority
  (ties broken by submission order, keeping the policy safe).
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Optional

from repro.active.tasks import MonitorTask


class Policy(enum.Enum):
    SAFE = "safe"
    FAIRNESS = "fairness"
    PRIORITY = "priority"


def select_task(
    policy: Policy,
    candidates: Iterable[MonitorTask],
    monitor: Any,
) -> Optional[MonitorTask]:
    """Pick the next task to run among ``candidates`` under ``policy``.

    Candidates are assumed ordered by submission (the pending list preserves
    arrival order), so SAFE's first-executable scan is also the cheapest.
    """
    if policy is Policy.SAFE:
        for task in candidates:
            if task.executable(monitor):
                return task
        return None
    best: Optional[MonitorTask] = None
    for task in candidates:
        if not task.executable(monitor):
            continue
        if best is None:
            best = task
        elif policy is Policy.FAIRNESS:
            if task.seq < best.seq:
                best = task
        else:  # PRIORITY
            if (task.priority, -task.seq) > (best.priority, -best.seq):
                best = task
    return best
