"""Single-consumer optimal bounded FIFO queue (paper Fig. 3.2).

The server thread is the only consumer; every worker is a producer.  The
original minimizes consumer-side synchronization by *count stealing*: the
consumer claims the whole currently-visible batch and touches the shared
counter once per batch.  This implementation keeps that structure but takes
it further by exploiting CPython's per-operation atomicity (via the
explicit :mod:`repro.runtime.atomics` layer), so the common case acquires
**zero locks** on both sides on GIL builds:

* a producer reserves a slot with one atomic ticket
  (:class:`~repro.runtime.atomics.AtomicCounter` — a raw
  ``itertools.count`` draw under the GIL, a locked fetch-and-add without
  it), checks admission against the consumer-published ``taken`` counter,
  and publishes the item with one ``deque.append`` — three C-level calls,
  no lock on GIL builds;
* the consumer steals the visible batch (``len(deque)``), advances
  ``taken`` once per batch (the paper's take-count strategy), and dequeues
  the claimed items with plain ``popleft`` — no lock, one shared-counter
  touch per batch;
* blocking only happens through a parking lot (lock + condition) that a
  producer enters *after* its admission check fails, and that the consumer
  touches only when ``_parked`` says somebody is actually waiting.

Memory-model note (the no-GIL contract).  The queue's correctness rests on
four primitives, each explicitly accounted for on both builds:

* **ticket draws** go through :class:`repro.runtime.atomics.AtomicCounter`
  — a raw ``itertools.count`` draw on GIL builds (atomic single C call), a
  locked fetch-and-add on free-threaded builds.  Tickets are the only
  multi-writer read-modify-write in the queue;
* **``deque.append`` / ``popleft`` / ``len``** are atomic per operation on
  both builds (GIL, or PEP 703's per-object container locks on
  free-threaded CPython);
* **``_taken``** has a single writer (the consumer); producer reads are
  racy but conservative — the counter only grows, so a stale (smaller)
  value can only make ``t - taken >= capacity`` *more* likely, i.e. park a
  producer that could have been admitted, never admit one over the bound;
* **the parking-lot handshake** is the one store-load pattern that needs
  sequential consistency ("consumer stores ``_taken`` then loads
  ``_parked``; producer stores ``_parked`` then loads ``_taken``").  The
  GIL provides it; without the GIL the consumer takes the parking lock
  before checking ``_parked`` (one lock per *batch*, selected at import by
  ``GIL_ENABLED``), which restores the ordering through lock
  acquire/release: whichever side enters the lock second observes the
  other's store.  The producer's re-check under that lock closes the
  lost-wakeup window exactly as before.

Capacity semantics (inherent to the original design, kept deliberately):
the bound applies to *unclaimed* items.  A steal advances ``taken`` by the
whole batch up front, so producers may admit up to ``capacity`` further
items while the consumer drains its claimed batch — **transient total
occupancy is bounded by ``2 × capacity``** (asserted by the stress suite in
``tests/test_scqueue.py``).  A failed :meth:`try_put` cannot atomically
return its ticket; it abandons the reservation on a *void* list that the
consumer folds back into ``taken`` at the next steal, which keeps the
accounting exact for every later ticket.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Optional

from repro.resilience import chaos as _chaos
from repro.runtime.atomics import GIL_ENABLED, AtomicCounter

__all__ = ["AtomicInteger", "SingleConsumerBoundedQueue"]


class AtomicInteger:
    """Atomic integer with get / getAndIncrement / getAndAdd.

    Retained as a general-purpose utility (and for the ablation that
    measures what the queue used to cost); the queue itself no longer
    uses it.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0):
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> int:
        with self._lock:
            return self._value

    def get_and_increment(self) -> int:
        with self._lock:
            old = self._value
            self._value = old + 1
            return old

    def get_and_add(self, delta: int) -> int:
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    def compare_and_set(self, expect: int, update: int) -> bool:
        with self._lock:
            if self._value != expect:
                return False
            self._value = update
            return True


class SingleConsumerBoundedQueue:
    """Bounded MPSC FIFO queue: lock-free common case, batch stealing."""

    __slots__ = (
        "capacity", "_items", "_tickets", "_void", "_taken", "_claimed",
        "_parklock", "_not_full", "_parked", "steal_batches", "steal_items",
    )

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: deque[Any] = deque()     # published items (FIFO)
        self._tickets = AtomicCounter()       # producer slot reservations
        self._void: deque[None] = deque()     # reservations abandoned by try_put
        self._taken = 0       # consumer-published count of claimed tickets
        self._claimed = 0     # consumer-local remainder of the stolen batch
        self._parklock = threading.Lock()
        self._not_full = threading.Condition(self._parklock)
        self._parked = 0      # producers currently in the parking lot
        #: consumer-side instrumentation (single writer, racy reads OK)
        self.steal_batches = 0
        self.steal_items = 0

    # -- producers -------------------------------------------------------------
    def put(self, item: Any) -> None:
        """Enqueue, blocking while the queue is full.  Lock-free unless the
        admission check fails, in which case the producer parks."""
        if _chaos.enabled:
            # fires before the ticket draw: a delay here widens the window
            # between reservation decisions of racing producers
            _chaos.fire("queue_put", self)
        t = self._tickets.next()
        if t - self._taken >= self.capacity:
            self._park(t)
        self._items.append(item)

    def _park(self, ticket: int) -> None:
        with self._parklock:
            self._parked += 1
            try:
                # the re-check under the lock closes the lost-wakeup window:
                # the consumer's notify also needs this lock, so it cannot
                # fire between our check and our wait
                while ticket - self._taken >= self.capacity:
                    self._not_full.wait()
            finally:
                self._parked -= 1

    def try_put(self, item: Any) -> bool:
        """Non-blocking enqueue; False when full.

        A failed attempt abandons its ticket on the void list; the consumer
        folds voids back into ``taken`` at the next steal."""
        t = self._tickets.next()
        if t - self._taken >= self.capacity:
            self._void.append(None)
            return False
        self._items.append(item)
        return True

    # -- the single consumer ---------------------------------------------------
    def take(self) -> Optional[Any]:
        """Dequeue one item, or None when the queue is (momentarily) empty.

        Must only ever be called by one thread.  Touches the shared counter
        once per stolen batch: the whole visible batch is claimed up front
        and subsequent takes dequeue without synchronization.
        """
        if self._claimed == 0 and not self._steal():
            return None
        self._claimed -= 1
        return self._items.popleft()

    def drain_to(self, out, limit: Optional[int] = None) -> int:
        """Move every currently-visible item into ``out`` (append order);
        return the number moved.  Consumer-only; one counter touch per
        stolen batch.  ``limit`` caps the number moved (None = all)."""
        moved = 0
        pop = self._items.popleft
        append = out.append
        while limit is None or moved < limit:
            if self._claimed == 0 and not self._steal():
                break
            n = self._claimed
            if limit is not None:
                n = min(n, limit - moved)
            for _ in range(n):
                append(pop())
            self._claimed -= n
            moved += n
        return moved

    def _steal(self) -> int:
        """Claim the visible batch; fold voids; wake parked producers.
        Returns the batch size (0 when nothing is visible)."""
        if _chaos.enabled:
            # between the producers' appends and the consumer's claim —
            # stretches the window where items are visible but unclaimed
            _chaos.fire("queue_steal", self)
        advanced = 0
        void = self._void
        if void:
            # fold abandoned try_put reservations into the consumed count;
            # pop first, then advance (the conservative order: admission
            # briefly undercounts free slots, never overcounts)
            v = len(void)
            for _ in range(v):
                void.popleft()
            self._taken += v
            advanced = v
        n = len(self._items)
        if n:
            self._taken += n          # one shared-counter touch per batch
            self._claimed = n
            self.steal_batches += 1
            self.steal_items += n
            advanced += n
        if advanced:
            if GIL_ENABLED:
                # racy _parked read is sound: the GIL orders the producer's
                # "_parked store, _taken load" against our "_taken store,
                # _parked load" sequentially, so one side always sees the
                # other (the Dekker store-load pair in the module docstring)
                if self._parked:
                    with self._parklock:
                        self._not_full.notify_all()
            else:
                # no GIL ⇒ no store-load ordering without a fence: check
                # _parked *under* the parking lock (once per batch).  A
                # producer that hasn't entered the lot yet will re-check its
                # admission predicate under this lock and see our _taken.
                with self._parklock:
                    if self._parked:
                        self._not_full.notify_all()
        return n

    def approx_len(self) -> int:
        """Racy estimate of the items physically enqueued (claimed-but-not-
        yet-popped items count until the consumer dequeues them)."""
        return len(self._items)

    def __len__(self) -> int:
        return self.approx_len()
