"""Single-consumer optimal bounded FIFO queue (paper Fig. 3.2).

The server thread is the only consumer; every worker is a producer.  The
original minimizes consumer-side synchronization by *count stealing*: the
consumer claims the whole currently-visible batch and touches the shared
counter once per batch.  This implementation keeps that structure but takes
it further by exploiting CPython's GIL-atomic primitives, so the common
case acquires **zero locks** on both sides:

* a producer reserves a slot with one atomic ticket (``next`` on an
  ``itertools.count``), checks admission against the consumer-published
  ``taken`` counter, and publishes the item with one ``deque.append`` —
  three C-level calls, no lock;
* the consumer steals the visible batch (``len(deque)``), advances
  ``taken`` once per batch (the paper's take-count strategy), and dequeues
  the claimed items with plain ``popleft`` — no lock, one shared-counter
  touch per batch;
* blocking only happens through a parking lot (lock + condition) that a
  producer enters *after* its admission check fails, and that the consumer
  touches only when ``_parked`` says somebody is actually waiting.

Memory-model note: under the GIL, ``next(count)``, ``deque.append``,
``deque.popleft`` and ``len(deque)`` are atomic, and writes are visible to
subsequent reads in sequential-consistency order — the lost-wakeup
argument below relies on nothing stronger.  The parking path re-checks its
admission predicate under the parking lock, and the consumer's notify also
takes that lock, so a producer can never sleep through the wakeup that
frees its slot.

Capacity semantics (inherent to the original design, kept deliberately):
the bound applies to *unclaimed* items.  A steal advances ``taken`` by the
whole batch up front, so producers may admit up to ``capacity`` further
items while the consumer drains its claimed batch — **transient total
occupancy is bounded by ``2 × capacity``** (asserted by the stress suite in
``tests/test_scqueue.py``).  A failed :meth:`try_put` cannot atomically
return its ticket; it abandons the reservation on a *void* list that the
consumer folds back into ``taken`` at the next steal, which keeps the
accounting exact for every later ticket.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Optional

from repro.resilience import chaos as _chaos

__all__ = ["AtomicInteger", "SingleConsumerBoundedQueue"]


class AtomicInteger:
    """Atomic integer with get / getAndIncrement / getAndAdd.

    Retained as a general-purpose utility (and for the ablation that
    measures what the queue used to cost); the queue itself no longer
    uses it.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0):
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> int:
        with self._lock:
            return self._value

    def get_and_increment(self) -> int:
        with self._lock:
            old = self._value
            self._value = old + 1
            return old

    def get_and_add(self, delta: int) -> int:
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    def compare_and_set(self, expect: int, update: int) -> bool:
        with self._lock:
            if self._value != expect:
                return False
            self._value = update
            return True


class SingleConsumerBoundedQueue:
    """Bounded MPSC FIFO queue: lock-free common case, batch stealing."""

    __slots__ = (
        "capacity", "_items", "_tickets", "_void", "_taken", "_claimed",
        "_parklock", "_not_full", "_parked", "steal_batches", "steal_items",
    )

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: deque[Any] = deque()     # published items (FIFO)
        self._tickets = itertools.count()     # producer slot reservations
        self._void: deque[None] = deque()     # reservations abandoned by try_put
        self._taken = 0       # consumer-published count of claimed tickets
        self._claimed = 0     # consumer-local remainder of the stolen batch
        self._parklock = threading.Lock()
        self._not_full = threading.Condition(self._parklock)
        self._parked = 0      # producers currently in the parking lot
        #: consumer-side instrumentation (single writer, racy reads OK)
        self.steal_batches = 0
        self.steal_items = 0

    # -- producers -------------------------------------------------------------
    def put(self, item: Any) -> None:
        """Enqueue, blocking while the queue is full.  Lock-free unless the
        admission check fails, in which case the producer parks."""
        if _chaos.enabled:
            # fires before the ticket draw: a delay here widens the window
            # between reservation decisions of racing producers
            _chaos.fire("queue_put", self)
        t = next(self._tickets)
        if t - self._taken >= self.capacity:
            self._park(t)
        self._items.append(item)

    def _park(self, ticket: int) -> None:
        with self._parklock:
            self._parked += 1
            try:
                # the re-check under the lock closes the lost-wakeup window:
                # the consumer's notify also needs this lock, so it cannot
                # fire between our check and our wait
                while ticket - self._taken >= self.capacity:
                    self._not_full.wait()
            finally:
                self._parked -= 1

    def try_put(self, item: Any) -> bool:
        """Non-blocking enqueue; False when full.

        A failed attempt abandons its ticket on the void list; the consumer
        folds voids back into ``taken`` at the next steal."""
        t = next(self._tickets)
        if t - self._taken >= self.capacity:
            self._void.append(None)
            return False
        self._items.append(item)
        return True

    # -- the single consumer ---------------------------------------------------
    def take(self) -> Optional[Any]:
        """Dequeue one item, or None when the queue is (momentarily) empty.

        Must only ever be called by one thread.  Touches the shared counter
        once per stolen batch: the whole visible batch is claimed up front
        and subsequent takes dequeue without synchronization.
        """
        if self._claimed == 0 and not self._steal():
            return None
        self._claimed -= 1
        return self._items.popleft()

    def drain_to(self, out, limit: Optional[int] = None) -> int:
        """Move every currently-visible item into ``out`` (append order);
        return the number moved.  Consumer-only; one counter touch per
        stolen batch.  ``limit`` caps the number moved (None = all)."""
        moved = 0
        pop = self._items.popleft
        append = out.append
        while limit is None or moved < limit:
            if self._claimed == 0 and not self._steal():
                break
            n = self._claimed
            if limit is not None:
                n = min(n, limit - moved)
            for _ in range(n):
                append(pop())
            self._claimed -= n
            moved += n
        return moved

    def _steal(self) -> int:
        """Claim the visible batch; fold voids; wake parked producers.
        Returns the batch size (0 when nothing is visible)."""
        if _chaos.enabled:
            # between the producers' appends and the consumer's claim —
            # stretches the window where items are visible but unclaimed
            _chaos.fire("queue_steal", self)
        advanced = 0
        void = self._void
        if void:
            # fold abandoned try_put reservations into the consumed count;
            # pop first, then advance (the conservative order: admission
            # briefly undercounts free slots, never overcounts)
            v = len(void)
            for _ in range(v):
                void.popleft()
            self._taken += v
            advanced = v
        n = len(self._items)
        if n:
            self._taken += n          # one shared-counter touch per batch
            self._claimed = n
            self.steal_batches += 1
            self.steal_items += n
            advanced += n
        if advanced and self._parked:
            with self._parklock:
                self._not_full.notify_all()
        return n

    def approx_len(self) -> int:
        """Racy estimate of the items physically enqueued (claimed-but-not-
        yet-popped items count until the consumer dequeues them)."""
        return len(self._items)

    def __len__(self) -> int:
        return self.approx_len()
