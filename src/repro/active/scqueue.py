"""Single-consumer optimal bounded FIFO queue (paper Fig. 3.2).

The server thread is the only consumer; every worker is a producer.  The
design minimizes consumer-side synchronization:

* ``put`` is guarded by ``putlock`` plus a ``notFull`` condition;
* ``take`` runs without any lock — the consumer *steals* the whole current
  count into a local ``take_count`` cache and then dequeues that many items
  touching the shared atomic counter only once per batch, which (in the
  original) slashes cache-coherence traffic on the hot counter.

CPython has no lock-free atomic int, so :class:`AtomicInteger` carries a
micro-lock; the algorithmic structure (and the count-update frequency the
optimization targets) is preserved faithfully.

Capacity semantics (inherent to the original design): the bound applies to
*unclaimed* items.  Because a steal decrements the shared count by the whole
batch up front, producers may admit up to ``capacity`` further items while
the consumer drains its claimed batch — transient total occupancy is
bounded by ``2 × capacity``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Optional


class AtomicInteger:
    """Atomic integer with get / getAndIncrement / getAndAdd."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0):
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> int:
        with self._lock:
            return self._value

    def get_and_increment(self) -> int:
        with self._lock:
            old = self._value
            self._value = old + 1
            return old

    def get_and_add(self, delta: int) -> int:
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    def compare_and_set(self, expect: int, update: int) -> bool:
        with self._lock:
            if self._value != expect:
                return False
            self._value = update
            return True


class SingleConsumerBoundedQueue:
    """Bounded MPSC FIFO queue with consumer-side count stealing."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._count = AtomicInteger(0)
        self._putlock = threading.Lock()
        self._not_full = threading.Condition(self._putlock)
        self._items: deque[Any] = deque()
        self._take_count = 0  # consumer-local cache of claimable items

    # -- producers -------------------------------------------------------------
    def put(self, item: Any) -> None:
        """Enqueue, blocking while the queue is full."""
        with self._putlock:
            while self._count.get() == self.capacity:
                self._not_full.wait()
            self._items.append(item)
            lcount = self._count.get_and_increment()
            if lcount + 1 < self.capacity:
                # room remains: chain-wake the next blocked producer
                self._not_full.notify()

    def try_put(self, item: Any) -> bool:
        """Non-blocking enqueue; False when full."""
        with self._putlock:
            if self._count.get() == self.capacity:
                return False
            self._items.append(item)
            lcount = self._count.get_and_increment()
            if lcount + 1 < self.capacity:
                self._not_full.notify()
            return True

    def _signal_not_full(self) -> None:
        with self._putlock:
            self._not_full.notify()

    # -- the single consumer -----------------------------------------------------
    def take(self) -> Optional[Any]:
        """Dequeue one item, or None when the queue is (momentarily) empty.

        Must only ever be called by one thread.  Touches the shared counter
        once per stolen batch: ``take_count`` items are claimed up front and
        subsequent takes dequeue without synchronization.
        """
        if self._take_count > 0:
            self._take_count -= 1
            return self._items.popleft()
        self._take_count = self._count.get()
        if self._take_count == 0:
            self._signal_not_full()
            return None
        x = self._items.popleft()
        lcount = self._count.get_and_add(-self._take_count)
        if lcount == self._take_count:
            # we just emptied a full-at-steal-time queue: wake producers
            self._signal_not_full()
        self._take_count -= 1
        return x

    def approx_len(self) -> int:
        """Racy size estimate (exact when callers are quiescent)."""
        return self._count.get()

    def __len__(self) -> int:
        return self.approx_len()
