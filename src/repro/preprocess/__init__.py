"""The preprocessor component (paper Fig. 1.8): waituntil → DSL rewriting."""

from repro.preprocess.transformer import monitor_compile, waituntil

__all__ = ["monitor_compile", "waituntil"]
