"""The preprocessor: natural-Python predicates → taggable DSL (Fig. 1.8).

The original framework ships a source preprocessor that turns ``monitor
class`` / ``waituntil(count < items.length)`` keyword syntax into library
calls.  This module is its Python analogue: decorate a Monitor subclass
with :func:`monitor_compile` and write waits as *plain Python expressions*::

    @monitor_compile
    class BoundedQueue(Monitor):
        def put(self, item):
            waituntil(self.count < self.capacity)
            ...

Without the transform, ``self.count < self.capacity`` would evaluate
eagerly to a bool; the preprocessor rewrites each ``waituntil(expr)`` call
to ``self.wait_until(<DSL form of expr>)`` where

* ``self.attr`` reads become :data:`~repro.core.expressions.S` shared
  variables (``S.attr``) — so the condition manager can tag them;
* ``and`` / ``or`` / ``not`` become the DSL's ``&`` / ``|`` / ``~``
  (Python boolean operators are not overloadable);
* any other self-dependent subexpression (method calls, subscripts,
  ``len(self.items)``, …) becomes a named
  :class:`~repro.core.expressions.SharedExpr` so it can still anchor a tag;
* local variables and parameters are left in place — they are frozen into
  the predicate as constants when ``wait_until`` builds it, which is
  exactly the paper's closure operation.

The preprocessor also feeds the dependency-tracked relay (see
``docs/performance.md``): each lifted :class:`SharedExpr` is annotated
with the ``self.X`` names it reads (or None when opaque), and every
method — public or private, with or without waits — gets
``self._note_write('X')`` inserted before statements that write shared
state through paths ``Monitor.__setattr__`` cannot see (``self.x[i] =
v``, ``self.a.b = v``, ``del self.x[i]``, ``self.items.append(v)`` and
the other list/dict/set/deque mutators).  Aliased mutations (``xs =
self.items; xs.append(v)``) escape the static rewrite; monlint's W007
flags those.

As a by-product, compilation stashes a write-site summary on the class —
``cls._repro_write_sites`` maps each shared variable to the methods that
write it — which the runtime obligation checker
(:class:`repro.resilience.obligations.ObligationTracker`) uses to name
the candidate sections that *could* discharge a starving wait.

Limitations (documented, mirroring the original's): the transform needs the
class's source (``inspect.getsource``), so it does not work in the REPL;
``waituntil`` must be called as a statement with a single positional
argument; comparison chains (``a < b < c``) are split into conjunctions.
"""

from __future__ import annotations

import ast
import functools
import inspect
import textwrap
from typing import Any, Callable, TypeVar

from repro.runtime.errors import PredicateError

T = TypeVar("T", bound=type)

#: the name the preprocessor recognizes, mirroring the paper's keyword
WAITUNTIL = "waituntil"


def waituntil(condition: Any) -> None:  # pragma: no cover - always rewritten
    """Placeholder for the ``waituntil`` statement.

    Calls to this function only exist in *source* form; ``monitor_compile``
    rewrites them away.  Executing it directly means the enclosing class was
    not compiled — fail loudly rather than silently skipping the wait.
    """
    raise PredicateError(
        "waituntil() reached at runtime — decorate the class with "
        "@monitor_compile (or call self.wait_until(...) directly)"
    )


class _SelfExprCheck(ast.NodeVisitor):
    """Classify an expression: does it mention ``self``, and is it a plain
    ``self.attr`` read?"""

    def __init__(self, self_name: str):
        self.self_name = self_name
        self.mentions_self = False

    def visit_Name(self, node: ast.Name):
        if node.id == self.self_name:
            self.mentions_self = True


def _mentions_self(node: ast.AST, self_name: str) -> bool:
    checker = _SelfExprCheck(self_name)
    checker.visit(node)
    for child in ast.walk(node):
        checker.visit(child)
    return checker.mentions_self


def _is_plain_self_attr(node: ast.AST, self_name: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    )


def _collect_self_reads(node: ast.AST, self_name: str) -> frozenset | None:
    """Read set of a lifted expression: the ``self.X`` roots it mentions.

    ``len(self.items)`` reads ``{items}``; ``self.grid[i][j]`` reads
    ``{grid}``.  Returns None (conservative "reads everything") when the
    expression calls a method reached through ``self`` (its body may read
    anything) or lets bare ``self`` escape into a call/subscript — then
    the dependency-filtered relay must re-evaluate on every write.
    """
    reads: set[str] = set()
    consumed: set[int] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Call) and _mentions_self(n.func, self_name):
            return None
        if (
            isinstance(n, ast.Attribute)
            and isinstance(n.value, ast.Name)
            and n.value.id == self_name
        ):
            reads.add(n.attr)
            consumed.add(id(n.value))
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and n.id == self_name and id(n) not in consumed:
            return None  # bare self escapes (f(self), self[k], ...)
    return frozenset(reads)


class _PredicateRewriter(ast.NodeTransformer):
    """Rewrite one waituntil argument into DSL form."""

    def __init__(self, self_name: str):
        self.self_name = self_name

    # -- boolean structure ----------------------------------------------------
    def visit_BoolOp(self, node: ast.BoolOp) -> ast.AST:
        op = ast.BitAnd() if isinstance(node.op, ast.And) else ast.BitOr()
        values = [self.visit(v) for v in node.values]
        out = values[0]
        for value in values[1:]:
            out = ast.BinOp(left=out, op=op, right=value)
        return out

    def visit_UnaryOp(self, node: ast.UnaryOp) -> ast.AST:
        if isinstance(node.op, ast.Not):
            return ast.UnaryOp(op=ast.Invert(), operand=self.visit(node.operand))
        return self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> ast.AST:
        # split chains (a < b < c) into (a < b) & (b < c)
        left = self.visit(node.left)
        comparisons: list[ast.AST] = []
        current_left = left
        for op, comparator in zip(node.ops, node.comparators):
            right = self.visit(comparator)
            comparisons.append(
                ast.Compare(left=current_left, ops=[op], comparators=[right])
            )
            current_left = right
        out = comparisons[0]
        for comparison in comparisons[1:]:
            out = ast.BinOp(left=out, op=ast.BitAnd(), right=comparison)
        return out

    # -- leaves ----------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        if _is_plain_self_attr(node, self.self_name):
            # self.attr  →  S.attr
            return ast.Attribute(
                value=ast.Name(id="__repro_S", ctx=ast.Load()),
                attr=node.attr,
                ctx=ast.Load(),
            )
        return self._lift_if_self(node)

    def visit_Call(self, node: ast.Call) -> ast.AST:
        return self._lift_if_self(node)

    def visit_Subscript(self, node: ast.Subscript) -> ast.AST:
        return self._lift_if_self(node)

    def _lift_if_self(self, node: ast.AST) -> ast.AST:
        """Wrap a self-dependent compound expression into a SharedExpr:
        ``len(self.items)`` → ``__repro_shared(lambda m: len(m.items), "...")``
        (keyed by source text so equal expressions share tag tables)."""
        if not _mentions_self(node, self.self_name):
            return node  # pure-local: closure constant, leave untouched
        source = ast.unparse(node)
        reads = _collect_self_reads(node, self.self_name)
        if reads is None:
            reads_node: ast.expr = ast.Constant(value=None)
        else:
            reads_node = ast.Tuple(
                elts=[ast.Constant(value=n) for n in sorted(reads)],
                ctx=ast.Load(),
            )
        renamed = _RenameSelf(self.self_name).visit(
            ast.parse(source, mode="eval").body
        )
        lam = ast.Lambda(
            args=ast.arguments(
                posonlyargs=[],
                args=[ast.arg(arg="__repro_m")],
                kwonlyargs=[],
                kw_defaults=[],
                defaults=[],
            ),
            body=renamed,
        )
        return ast.Call(
            func=ast.Name(id="__repro_shared", ctx=ast.Load()),
            args=[lam, ast.Constant(value=source), reads_node],
            keywords=[],
        )


class _RenameSelf(ast.NodeTransformer):
    def __init__(self, self_name: str):
        self.self_name = self_name

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if node.id == self.self_name:
            return ast.Name(id="__repro_m", ctx=node.ctx)
        return node


#: receiver methods treated as in-place mutation of the container they are
#: called on (list/dict/set/deque vocabulary; unknown names are left alone
#: and fall under monlint's W007 instead)
_MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "popleft", "remove",
    "reverse", "rotate", "setdefault", "sort", "update",
})


def _peel_to_self_attr(node: ast.AST, self_name: str) -> str | None:
    """Follow ``value`` chains of attribute/subscript nodes down to the
    root; return the attribute name adjacent to ``self`` (``self.a.b[k]``
    → ``"a"``) or None when the path is not rooted at ``self``."""
    attr = None
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            attr = node.attr
        node = node.value
    if isinstance(node, ast.Name) and node.id == self_name:
        return attr
    return None


def _stmt_header_nodes(stmt: ast.stmt):
    """Yield a statement's expression nodes without descending into nested
    statement blocks (those are instrumented separately, in place)."""
    stack: list[ast.AST] = []
    for _field, value in ast.iter_fields(stmt):
        if isinstance(value, list):
            stack.extend(
                v for v in value
                if isinstance(v, ast.AST)
                and not isinstance(v, (ast.stmt, ast.excepthandler))
            )
        elif isinstance(value, ast.AST):
            stack.append(value)
    while stack:
        node = stack.pop()
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _untracked_writes(stmt: ast.stmt, self_name: str) -> set[str]:
    """Shared-variable names ``stmt`` writes through paths the monitor's
    ``__setattr__`` proxy cannot see: subscript/nested-attribute stores and
    deletes (``self.x[i] = v``, ``self.a.b = v``, ``del self.x[i]``) and
    in-place mutator calls (``self.items.append(v)``)."""
    roots: set[str] = set()
    for node in _stmt_header_nodes(stmt):
        if isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            if _is_plain_self_attr(node, self_name):
                continue  # rebind/del of self.attr: __setattr__ tracks it
            root = _peel_to_self_attr(node, self_name)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            root = _peel_to_self_attr(node.func.value, self_name)
        else:
            continue
        if root is not None:
            roots.add(root)
    return roots


def _note_write_stmt(self_name: str, attr: str) -> ast.Expr:
    return ast.Expr(
        value=ast.Call(
            func=ast.Attribute(
                value=ast.Name(id=self_name, ctx=ast.Load()),
                attr="_note_write",
                ctx=ast.Load(),
            ),
            args=[ast.Constant(value=attr)],
            keywords=[],
        )
    )


def _instrument_block(stmts: list, self_name: str) -> tuple[list, bool]:
    """Insert ``self._note_write('X')`` before every statement with an
    untracked write to shared variable X.  The note runs even when the
    write turns out conditional (ternary, short-circuit) — over-marking
    dirty only costs a spurious re-evaluation, never a missed signal."""
    out: list = []
    changed = False
    for stmt in stmts:
        for field, value in ast.iter_fields(stmt):
            if not (isinstance(value, list) and value):
                continue
            if isinstance(value[0], ast.stmt):
                new, sub = _instrument_block(value, self_name)
                setattr(stmt, field, new)
                changed |= sub
            elif isinstance(value[0], ast.excepthandler):
                for handler in value:
                    new, sub = _instrument_block(handler.body, self_name)
                    handler.body = new
                    changed |= sub
        for name in sorted(_untracked_writes(stmt, self_name)):
            out.append(_note_write_stmt(self_name, name))
            changed = True
        out.append(stmt)
    return out, changed


class _MethodRewriter(ast.NodeTransformer):
    """Replace ``waituntil(expr)`` statements inside one method body."""

    def __init__(self, self_name: str):
        self.self_name = self_name
        self.rewrote = False

    def visit_Expr(self, node: ast.Expr) -> ast.AST:
        call = node.value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == WAITUNTIL
        ):
            if len(call.args) != 1 or call.keywords:
                raise PredicateError(
                    "waituntil takes exactly one positional condition"
                )
            predicate = _PredicateRewriter(self.self_name).visit(call.args[0])
            ast.fix_missing_locations(predicate)
            self.rewrote = True
            return ast.Expr(
                value=ast.Call(
                    func=ast.Attribute(
                        value=ast.Name(id=self.self_name, ctx=ast.Load()),
                        attr="wait_until",
                        ctx=ast.Load(),
                    ),
                    args=[predicate],
                    keywords=[],
                )
            )
        return node


def _method_write_vars(fn: Callable) -> set[str]:
    """Shared-variable names one raw method writes, proxy-visible or not:
    plain ``self.attr`` rebinds/deletes plus the untracked in-place roots
    ``_untracked_writes`` instruments.  Empty when the source is
    unavailable (REPL/exec classes)."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return set()
    try:
        func_def = ast.parse(source).body[0]
    except (SyntaxError, IndexError):  # pragma: no cover — defensive
        return set()
    if not isinstance(func_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return set()
    if not func_def.args.args:
        return set()
    self_name = func_def.args.args[0].arg
    written: set[str] = set()
    for node in ast.walk(func_def):
        if isinstance(node, ast.Attribute) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            if _is_plain_self_attr(node, self_name):
                written.add(node.attr)
    for node in ast.walk(func_def):
        if isinstance(node, ast.stmt):
            written |= _untracked_writes(node, self_name)
    return {name for name in written if not name.startswith("_")}


def _compile_method(
    fn: Callable, cls_globals: dict, allow_waituntil: bool = True
) -> Callable | None:
    """Rewrite one method; returns the new function or None if untouched.

    Two independent rewrites may apply: the ``waituntil`` → ``wait_until``
    transform (public methods only) and the untracked-write instrumentation
    (``self._note_write`` insertion, so dependency-filtered relay sees
    in-place container mutations)."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        # No retrievable source: REPL input, exec()-built classes, frozen
        # apps.  If the body never mentions waituntil that is harmless, but
        # a method that *does* call it would otherwise sail through and hit
        # the placeholder's error at call time — fail at decoration instead.
        if WAITUNTIL in fn.__code__.co_names:
            raise PredicateError(
                f"{fn.__qualname__}: cannot retrieve source for the "
                "waituntil rewrite (class defined in a REPL, exec(), or a "
                "frozen module); define it in an importable file or call "
                "self.wait_until(...) directly"
            ) from exc
        return None
    tree = ast.parse(source)
    func_def = tree.body[0]
    if not isinstance(func_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    if not func_def.args.args:
        return None
    self_name = func_def.args.args[0].arg
    rewrote = False
    if allow_waituntil and WAITUNTIL in source:
        rewriter = _MethodRewriter(self_name)
        rewriter.visit(func_def)
        rewrote = rewriter.rewrote
    func_def.body, instrumented = _instrument_block(func_def.body, self_name)
    if not rewrote and not instrumented:
        return None
    # closure variables (rare in methods) cannot be rebuilt by exec; detect
    if fn.__closure__:
        if rewrote:
            raise PredicateError(
                f"{fn.__qualname__}: waituntil methods must not close over "
                "enclosing-scope variables (pass them as parameters instead)"
            )
        return None  # keep closure-bearing methods intact; W007 covers them
    func_def.decorator_list = []     # decorators already applied to `fn`
    ast.fix_missing_locations(tree)
    namespace: dict = {}
    exec_globals = dict(cls_globals)
    from repro.core.expressions import S, SharedExpr

    exec_globals["__repro_S"] = S
    exec_globals["__repro_shared"] = (
        lambda f, name, reads=None: SharedExpr(f, name, reads)
    )
    code = compile(tree, filename=f"<monitor_compile {fn.__qualname__}>", mode="exec")
    exec(code, exec_globals, namespace)  # noqa: S102 — compiling our own AST
    new_fn = namespace[func_def.name]
    functools.update_wrapper(new_fn, fn)
    return new_fn


def monitor_compile(cls: T) -> T:
    """Class decorator: rewrite every ``waituntil(...)`` in the class body.

    Must sit *above* the Monitor metaclass's wrapping — i.e. applied to the
    already-created class — so it unwraps each auto-wrapped method, rewrites
    the original body, and re-wraps it.

    Beyond the rewrite, compilation runs the ahead-of-time signal-placement
    analysis (:mod:`repro.analysis.aot`): each method's transitively-closed
    write set is derived from its raw source, and public methods whose
    writes are fully statically visible are re-wrapped so their section
    exits signal directly — skipping the relay search — with
    ``cls._repro_aot_plans`` recording the per-method plans.  Methods with
    bare-``self`` escapes, unresolvable calls, or no retrievable source
    keep the generic relay exit, as do inherited methods (cross-class
    writers always fall back).
    """
    from repro.core.monitor import Monitor, _wrap_method, _wrap_method_direct

    if not issubclass(cls, Monitor):
        raise PredicateError("@monitor_compile requires a Monitor subclass")
    module = inspect.getmodule(cls)
    cls_globals = vars(module) if module else {}
    #: shared variable → method names that write it (the static pass's
    #: candidate write sites, consumed by the runtime ObligationTracker
    #: when naming who *could* have discharged a starving wait)
    write_sites: dict[str, list[str]] = {}
    #: raw (unwrapped) functions, for the AOT signal-placement analysis
    raw_methods: dict[str, Callable] = {}
    for name, value in list(vars(cls).items()):
        if not callable(value) or (name.startswith("__") and name.endswith("__")):
            continue
        raw = getattr(value, "__wrapped__", value)
        raw_methods[name] = raw
        for var in _method_write_vars(raw):
            methods = write_sites.setdefault(var, [])
            if name not in methods:
                methods.append(name)
        # private helpers run under the public caller's lock: they get the
        # write instrumentation but never the waituntil rewrite
        compiled = _compile_method(
            raw, cls_globals, allow_waituntil=not name.startswith("_")
        )
        if compiled is None:
            continue
        if getattr(value, "_repro_wrapped", False):
            setattr(cls, name, _wrap_method(compiled))
        else:
            setattr(cls, name, compiled)
    cls._repro_write_sites = {
        var: sorted(methods) for var, methods in write_sites.items()
    }
    # ---- ahead-of-time signal placement ---------------------------------
    # lazy import: the analysis package loads only when a class actually
    # compiles, never on plain Monitor use
    from repro.analysis.aot import build_plans_for_class

    aot_plans = build_plans_for_class(raw_methods)
    for name, plan in aot_plans.items():
        if name.startswith("_"):
            continue  # helpers run under a public caller's exit
        current = vars(cls).get(name)
        if current is None or not getattr(current, "_repro_wrapped", False):
            continue  # unmonitored / property-like: no section exit to plan
        inner = getattr(current, "__wrapped__", current)
        setattr(cls, name, _wrap_method_direct(inner, plan))
    cls._repro_aot_plans = aot_plans
    return cls
