"""The preprocessor: natural-Python predicates → taggable DSL (Fig. 1.8).

The original framework ships a source preprocessor that turns ``monitor
class`` / ``waituntil(count < items.length)`` keyword syntax into library
calls.  This module is its Python analogue: decorate a Monitor subclass
with :func:`monitor_compile` and write waits as *plain Python expressions*::

    @monitor_compile
    class BoundedQueue(Monitor):
        def put(self, item):
            waituntil(self.count < self.capacity)
            ...

Without the transform, ``self.count < self.capacity`` would evaluate
eagerly to a bool; the preprocessor rewrites each ``waituntil(expr)`` call
to ``self.wait_until(<DSL form of expr>)`` where

* ``self.attr`` reads become :data:`~repro.core.expressions.S` shared
  variables (``S.attr``) — so the condition manager can tag them;
* ``and`` / ``or`` / ``not`` become the DSL's ``&`` / ``|`` / ``~``
  (Python boolean operators are not overloadable);
* any other self-dependent subexpression (method calls, subscripts,
  ``len(self.items)``, …) becomes a named
  :class:`~repro.core.expressions.SharedExpr` so it can still anchor a tag;
* local variables and parameters are left in place — they are frozen into
  the predicate as constants when ``wait_until`` builds it, which is
  exactly the paper's closure operation.

Limitations (documented, mirroring the original's): the transform needs the
class's source (``inspect.getsource``), so it does not work in the REPL;
``waituntil`` must be called as a statement with a single positional
argument; comparison chains (``a < b < c``) are split into conjunctions.
"""

from __future__ import annotations

import ast
import functools
import inspect
import textwrap
from typing import Any, Callable, TypeVar

from repro.runtime.errors import PredicateError

T = TypeVar("T", bound=type)

#: the name the preprocessor recognizes, mirroring the paper's keyword
WAITUNTIL = "waituntil"


def waituntil(condition: Any) -> None:  # pragma: no cover - always rewritten
    """Placeholder for the ``waituntil`` statement.

    Calls to this function only exist in *source* form; ``monitor_compile``
    rewrites them away.  Executing it directly means the enclosing class was
    not compiled — fail loudly rather than silently skipping the wait.
    """
    raise PredicateError(
        "waituntil() reached at runtime — decorate the class with "
        "@monitor_compile (or call self.wait_until(...) directly)"
    )


class _SelfExprCheck(ast.NodeVisitor):
    """Classify an expression: does it mention ``self``, and is it a plain
    ``self.attr`` read?"""

    def __init__(self, self_name: str):
        self.self_name = self_name
        self.mentions_self = False

    def visit_Name(self, node: ast.Name):
        if node.id == self.self_name:
            self.mentions_self = True


def _mentions_self(node: ast.AST, self_name: str) -> bool:
    checker = _SelfExprCheck(self_name)
    checker.visit(node)
    for child in ast.walk(node):
        checker.visit(child)
    return checker.mentions_self


def _is_plain_self_attr(node: ast.AST, self_name: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    )


class _PredicateRewriter(ast.NodeTransformer):
    """Rewrite one waituntil argument into DSL form."""

    def __init__(self, self_name: str):
        self.self_name = self_name

    # -- boolean structure ----------------------------------------------------
    def visit_BoolOp(self, node: ast.BoolOp) -> ast.AST:
        op = ast.BitAnd() if isinstance(node.op, ast.And) else ast.BitOr()
        values = [self.visit(v) for v in node.values]
        out = values[0]
        for value in values[1:]:
            out = ast.BinOp(left=out, op=op, right=value)
        return out

    def visit_UnaryOp(self, node: ast.UnaryOp) -> ast.AST:
        if isinstance(node.op, ast.Not):
            return ast.UnaryOp(op=ast.Invert(), operand=self.visit(node.operand))
        return self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> ast.AST:
        # split chains (a < b < c) into (a < b) & (b < c)
        left = self.visit(node.left)
        comparisons: list[ast.AST] = []
        current_left = left
        for op, comparator in zip(node.ops, node.comparators):
            right = self.visit(comparator)
            comparisons.append(
                ast.Compare(left=current_left, ops=[op], comparators=[right])
            )
            current_left = right
        out = comparisons[0]
        for comparison in comparisons[1:]:
            out = ast.BinOp(left=out, op=ast.BitAnd(), right=comparison)
        return out

    # -- leaves ----------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        if _is_plain_self_attr(node, self.self_name):
            # self.attr  →  S.attr
            return ast.Attribute(
                value=ast.Name(id="__repro_S", ctx=ast.Load()),
                attr=node.attr,
                ctx=ast.Load(),
            )
        return self._lift_if_self(node)

    def visit_Call(self, node: ast.Call) -> ast.AST:
        return self._lift_if_self(node)

    def visit_Subscript(self, node: ast.Subscript) -> ast.AST:
        return self._lift_if_self(node)

    def _lift_if_self(self, node: ast.AST) -> ast.AST:
        """Wrap a self-dependent compound expression into a SharedExpr:
        ``len(self.items)`` → ``__repro_shared(lambda m: len(m.items), "...")``
        (keyed by source text so equal expressions share tag tables)."""
        if not _mentions_self(node, self.self_name):
            return node  # pure-local: closure constant, leave untouched
        source = ast.unparse(node)
        renamed = _RenameSelf(self.self_name).visit(
            ast.parse(source, mode="eval").body
        )
        lam = ast.Lambda(
            args=ast.arguments(
                posonlyargs=[],
                args=[ast.arg(arg="__repro_m")],
                kwonlyargs=[],
                kw_defaults=[],
                defaults=[],
            ),
            body=renamed,
        )
        return ast.Call(
            func=ast.Name(id="__repro_shared", ctx=ast.Load()),
            args=[lam, ast.Constant(value=source)],
            keywords=[],
        )


class _RenameSelf(ast.NodeTransformer):
    def __init__(self, self_name: str):
        self.self_name = self_name

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if node.id == self.self_name:
            return ast.Name(id="__repro_m", ctx=node.ctx)
        return node


class _MethodRewriter(ast.NodeTransformer):
    """Replace ``waituntil(expr)`` statements inside one method body."""

    def __init__(self, self_name: str):
        self.self_name = self_name
        self.rewrote = False

    def visit_Expr(self, node: ast.Expr) -> ast.AST:
        call = node.value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == WAITUNTIL
        ):
            if len(call.args) != 1 or call.keywords:
                raise PredicateError(
                    "waituntil takes exactly one positional condition"
                )
            predicate = _PredicateRewriter(self.self_name).visit(call.args[0])
            ast.fix_missing_locations(predicate)
            self.rewrote = True
            return ast.Expr(
                value=ast.Call(
                    func=ast.Attribute(
                        value=ast.Name(id=self.self_name, ctx=ast.Load()),
                        attr="wait_until",
                        ctx=ast.Load(),
                    ),
                    args=[predicate],
                    keywords=[],
                )
            )
        return node


def _compile_method(fn: Callable, cls_globals: dict) -> Callable | None:
    """Rewrite one method; returns the new function or None if untouched."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        # No retrievable source: REPL input, exec()-built classes, frozen
        # apps.  If the body never mentions waituntil that is harmless, but
        # a method that *does* call it would otherwise sail through and hit
        # the placeholder's error at call time — fail at decoration instead.
        if WAITUNTIL in fn.__code__.co_names:
            raise PredicateError(
                f"{fn.__qualname__}: cannot retrieve source for the "
                "waituntil rewrite (class defined in a REPL, exec(), or a "
                "frozen module); define it in an importable file or call "
                "self.wait_until(...) directly"
            ) from exc
        return None
    if WAITUNTIL not in source:
        return None
    tree = ast.parse(source)
    func_def = tree.body[0]
    if not isinstance(func_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    if not func_def.args.args:
        return None
    self_name = func_def.args.args[0].arg
    rewriter = _MethodRewriter(self_name)
    rewriter.visit(func_def)
    if not rewriter.rewrote:
        return None
    func_def.decorator_list = []     # decorators already applied to `fn`
    ast.fix_missing_locations(tree)
    namespace: dict = {}
    exec_globals = dict(cls_globals)
    from repro.core.expressions import S, SharedExpr

    exec_globals["__repro_S"] = S
    exec_globals["__repro_shared"] = lambda f, name: SharedExpr(f, name)
    code = compile(tree, filename=f"<monitor_compile {fn.__qualname__}>", mode="exec")
    exec(code, exec_globals, namespace)  # noqa: S102 — compiling our own AST
    new_fn = namespace[func_def.name]
    functools.update_wrapper(new_fn, fn)
    # closure variables (rare in methods) cannot be rebuilt by exec; detect
    if fn.__closure__:
        raise PredicateError(
            f"{fn.__qualname__}: waituntil methods must not close over "
            "enclosing-scope variables (pass them as parameters instead)"
        )
    return new_fn


def monitor_compile(cls: T) -> T:
    """Class decorator: rewrite every ``waituntil(...)`` in the class body.

    Must sit *above* the Monitor metaclass's wrapping — i.e. applied to the
    already-created class — so it unwraps each auto-wrapped method, rewrites
    the original body, and re-wraps it.
    """
    from repro.core.monitor import Monitor, _wrap_method

    if not issubclass(cls, Monitor):
        raise PredicateError("@monitor_compile requires a Monitor subclass")
    module = inspect.getmodule(cls)
    cls_globals = vars(module) if module else {}
    for name, value in list(vars(cls).items()):
        if not callable(value) or name.startswith("_"):
            continue
        raw = getattr(value, "__wrapped__", value)
        compiled = _compile_method(raw, cls_globals)
        if compiled is None:
            continue
        if getattr(value, "_repro_wrapped", False):
            setattr(cls, name, _wrap_method(compiled))
        else:
            setattr(cls, name, compiled)
    return cls
