"""Instrumentation counters and phase timers.

The paper's evaluation reports (beyond wall-clock runtime):

* number of context switches (Fig. 2.10) — here the exact count of thread
  wakeups (``signals``) plus futile wakeups (a woken thread whose predicate
  turned false again before it re-entered the monitor);
* number of predicate evaluations and false evaluations of global conditions
  (Fig. 4.8);
* CPU-usage breakdown across await / lock / relay-signal / tag-management
  phases (Table 2.1).

Counters are plain ints mutated while the caller already holds the monitor
lock (or with a tiny dedicated lock for cross-monitor aggregation), so the
instrumentation cost is a handful of integer adds per monitor operation.
The monitor hot path bumps counters by direct attribute increment
(``metrics.signals += 1``) rather than through :meth:`Metrics.bump` — the
string-keyed ``getattr``/``setattr`` pair costs more than the increment
itself; ``bump``/``add`` remain for cold call sites and tests.

Free-threading contract (audited for the no-GIL lane, see the atomicity
table in docs/performance.md): a direct ``+= 1`` is a read-modify-write
and was never atomic on its own, under the GIL or not — every direct
increment in the tree is therefore *locked by construction*, just not by
this module: per-monitor counters are only bumped while the bumping thread
holds that monitor's lock (mutual exclusion is GIL-independent), and the
few lock-free counters (the SC queue's ``steal_batches``/``steal_items``)
are single-writer by the queue's consumer contract with racy advisory
reads.  Call sites outside any lock must use :meth:`Metrics.add`, which
takes the instance lock on every build.  ``snapshot``/``merge_from`` are
locked, so cross-thread aggregation tears nothing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class Metrics:
    """A bundle of event counters; one per monitor plus one global."""

    signals: int = 0            #: single-thread signals issued (relay rule)
    broadcasts: int = 0         #: signalAll-style broadcasts (baseline mode)
    wakeups: int = 0            #: threads that actually woke from a wait
    futile_wakeups: int = 0     #: wakeups whose predicate was false on re-entry
    waits: int = 0              #: wait_until calls that actually blocked
    predicate_evals: int = 0    #: closure-predicate evaluations
    tag_checks: int = 0         #: tag-index probes
    false_evals: int = 0        #: global-condition evaluations that were false
    tasks_submitted: int = 0    #: ActiveMonitor task submissions
    tasks_combined: int = 0     #: tasks executed by a combiner (not the server)
    steal_batches: int = 0      #: queue batch-steals by the executor (Fig. 3.2)
    steal_items: int = 0        #: tasks moved by those steals (items/batch ratio)
    gen_skips: int = 0          #: predicate/expression evaluations served from
                                #: a generation memo (global-predicate atoms and
                                #: relay shared-expression values) — skipped work
    relay_dirty_skips: int = 0  #: parked untagged waiters a relay search did
                                #: *not* re-evaluate because no variable in
                                #: their read set was written since they last
                                #: evaluated false (dependency filtering)
    relay_buckets_scanned: int = 0  #: read-set buckets flushed into the
                                    #: eligible queue by write tracking (one
                                    #: per dirtied variable with parked readers)
    relay_skipped_aot: int = 0  #: section exits served by an AOT direct-signal
                                #: plan: the relay search (tag probe + bucket
                                #: flush bookkeeping) was skipped entirely
    relay_aot_fallbacks: int = 0  #: direct-signal exits that fell back to the
                                  #: generic relay because the observed dirty
                                  #: set escaped the static write-set plan
    stm_commits: int = 0        #: STM transactions committed
    stm_aborts: int = 0         #: STM transactions aborted/retried
    wait_timeouts: int = 0      #: bounded waits that expired (WaitTimeoutError)
    wait_cancels: int = 0       #: waits abandoned via CancelToken
    server_restarts: int = 0    #: supervised server threads restarted after death
    futures_failed_fast: int = 0  #: futures failed immediately on server death
                                  #: or monitor poisoning instead of hanging

    # Phase timers (seconds), populated only when Config.phase_timing is on.
    await_time: float = 0.0
    lock_time: float = 0.0
    relay_time: float = 0.0
    tag_time: float = 0.0

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def add(self, name: str, amount: int = 1) -> None:
        """Thread-safe increment, for call sites outside any monitor lock."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def bump(self, name: str, amount: int = 1) -> None:
        """Unsynchronized increment, for call sites holding the monitor lock."""
        setattr(self, name, getattr(self, name) + amount)

    def add_time(self, phase: str, seconds: float) -> None:
        with self._lock:
            setattr(self, phase, getattr(self, phase) + seconds)

    def snapshot(self) -> dict[str, float]:
        """Return a plain-dict copy of every counter and timer."""
        with self._lock:
            return {k: getattr(self, k) for k in self._FIELDS}

    _FIELDS = (
        "signals", "broadcasts", "wakeups", "futile_wakeups",
        "waits", "predicate_evals", "tag_checks", "false_evals",
        "tasks_submitted", "tasks_combined",
        "steal_batches", "steal_items", "gen_skips",
        "relay_dirty_skips", "relay_buckets_scanned",
        "relay_skipped_aot", "relay_aot_fallbacks",
        "stm_commits", "stm_aborts",
        "wait_timeouts", "wait_cancels",
        "server_restarts", "futures_failed_fast",
        "await_time", "lock_time", "relay_time", "tag_time",
    )

    def reset(self) -> None:
        with self._lock:
            for k in self._FIELDS:
                setattr(self, k, 0 if isinstance(getattr(self, k), int) else 0.0)

    def merge_from(self, other: "Metrics") -> None:
        """Accumulate ``other``'s counters into this one."""
        snap = other.snapshot()
        with self._lock:
            for k, v in snap.items():
                setattr(self, k, getattr(self, k) + v)


class PhaseTimer:
    """Context manager attributing elapsed time to a metrics phase.

    Used to regenerate Table 2.1's await / lock / relay-signal / tag-manager
    CPU breakdown.  A no-op (single branch) when timing is disabled.

    Hot paths do not construct a disabled PhaseTimer per operation: they
    branch on ``ConfigSnapshot.phase_timing`` and only instantiate a timer
    when timing is on, or enter the shared :data:`NULL_PHASE_TIMER`, so the
    timing-off fast path allocates nothing.
    """

    __slots__ = ("_metrics", "_phase", "_enabled", "_start")

    def __init__(self, metrics: Metrics, phase: str, enabled: bool = True):
        self._metrics = metrics
        self._phase = phase
        self._enabled = enabled
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        if self._enabled:
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._enabled:
            self._metrics.add_time(self._phase, time.perf_counter() - self._start)


class _NullPhaseTimer:
    """Allocation-free stand-in for a disabled :class:`PhaseTimer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhaseTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: Shared no-op timer; ``with NULL_PHASE_TIMER:`` costs two cheap calls and
#: zero allocations.
NULL_PHASE_TIMER = _NullPhaseTimer()


def phase_timer(metrics: Metrics, phase: str, enabled: bool):
    """Return a timer for ``with`` without allocating when disabled."""
    return PhaseTimer(metrics, phase) if enabled else NULL_PHASE_TIMER


#: Process-global aggregate; individual monitors keep their own ``Metrics``
#: and benchmarks merge them here (or read them per-monitor).
global_metrics = Metrics()
