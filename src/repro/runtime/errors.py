"""Exception hierarchy for the framework."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every framework error."""


class MonitorError(ReproError):
    """Misuse of a monitor object (e.g. wait outside a monitor method)."""


class NotOwnerError(MonitorError):
    """A thread touched monitor state without holding the monitor lock."""


class PredicateError(ReproError):
    """Malformed predicate passed to ``wait_until`` / the predicate DSL."""


class NestedMultisynchError(ReproError):
    """``multisynch`` blocks may not nest (paper §4.1 assumption)."""


class CompositionError(ReproError):
    """Invalid use of OR / AND / selectone / selectall operands."""


class AnalysisError(ReproError):
    """A dynamic monitor-usage check (repro.analysis.runtime) failed."""


class LockOrderError(AnalysisError):
    """A thread acquired monitor locks against ascending-id order (§4.1).

    Raised only when the opt-in dynamic checker is enabled; the ordering it
    asserts is the invariant ``multisynch``'s deadlock freedom rests on.
    """


class PredicateSideEffectError(AnalysisError):
    """Evaluating a ``waituntil`` predicate mutated monitor state.

    Predicates must be *closed* (Def. 2): side-effect-free functions of
    shared state and frozen locals, evaluable by any thread any number of
    times.  Raised only when the dynamic checker is enabled.
    """


class TaskError(ReproError):
    """An asynchronous monitor task failed; wraps the original exception.

    Chapter 6.2.1 of the paper calls for an exception handler that records
    failures of delegated tasks and re-raises them at future-evaluation time;
    this is the carrier type.
    """

    def __init__(self, message: str, cause: BaseException | None = None):
        super().__init__(message)
        self.cause = cause
