"""Exception hierarchy for the framework."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every framework error."""


class MonitorError(ReproError):
    """Misuse of a monitor object (e.g. wait outside a monitor method)."""


class NotOwnerError(MonitorError):
    """A thread touched monitor state without holding the monitor lock."""


class PredicateError(ReproError):
    """Malformed predicate passed to ``wait_until`` / the predicate DSL."""


class NestedMultisynchError(ReproError):
    """``multisynch`` blocks may not nest (paper §4.1 assumption)."""


class CompositionError(ReproError):
    """Invalid use of OR / AND / selectone / selectall operands."""


class TaskError(ReproError):
    """An asynchronous monitor task failed; wraps the original exception.

    Chapter 6.2.1 of the paper calls for an exception handler that records
    failures of delegated tasks and re-raises them at future-evaluation time;
    this is the carrier type.
    """

    def __init__(self, message: str, cause: BaseException | None = None):
        super().__init__(message)
        self.cause = cause
