"""Exception hierarchy for the framework."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every framework error."""


class MonitorError(ReproError):
    """Misuse of a monitor object (e.g. wait outside a monitor method)."""


class NotOwnerError(MonitorError):
    """A thread touched monitor state without holding the monitor lock."""


class PredicateError(ReproError):
    """Malformed predicate passed to ``wait_until`` / the predicate DSL."""


class NestedMultisynchError(ReproError):
    """``multisynch`` blocks may not nest (paper §4.1 assumption)."""


class CompositionError(ReproError):
    """Invalid use of OR / AND / selectone / selectall operands."""


class AnalysisError(ReproError):
    """A dynamic monitor-usage check (repro.analysis.runtime) failed."""


class LockOrderError(AnalysisError):
    """A thread acquired monitor locks against ascending-id order (§4.1).

    Raised only when the opt-in dynamic checker is enabled; the ordering it
    asserts is the invariant ``multisynch``'s deadlock freedom rests on.
    """


class PredicateSideEffectError(AnalysisError):
    """Evaluating a ``waituntil`` predicate mutated monitor state.

    Predicates must be *closed* (Def. 2): side-effect-free functions of
    shared state and frozen locals, evaluable by any thread any number of
    times.  Raised only when the dynamic checker is enabled.
    """


class TaskError(ReproError):
    """An asynchronous monitor task failed; wraps the original exception.

    Chapter 6.2.1 of the paper calls for an exception handler that records
    failures of delegated tasks and re-raises them at future-evaluation time;
    this is the carrier type.
    """

    def __init__(self, message: str, cause: BaseException | None = None):
        super().__init__(message)
        self.cause = cause


class WaitTimeoutError(MonitorError, TimeoutError):
    """A bounded wait (``wait_until(timeout=...)``, ``LightFuture.get``,
    ``Multisynch.wait_until``) expired before its condition became true.

    Subclasses :class:`TimeoutError` so existing ``except TimeoutError``
    call sites keep working.  Timing out never loses a relay signal: the
    closure property (Def. 2) lets any thread re-evaluate a parked
    predicate, so a timed-out waiter deregisters and re-runs the relay
    rule, handing any baton it held to another satisfied waiter.
    """


class WaitCancelledError(MonitorError):
    """A wait was abandoned because its :class:`CancelToken` was cancelled.

    Carries the token's reason (if any) as ``reason``.
    """

    def __init__(self, message: str, reason: object = None):
        super().__init__(message)
        self.reason = reason


class TaskQueueFull(ReproError):
    """A nonblocking submission found the server's task queue full.

    Raised only by :meth:`ActiveMonitor.submit_nowait` (the asyncio
    frontend's entry point): the blocking ``submit`` path parks the caller
    instead, but an event-loop thread must never park, so the full queue
    surfaces as an exception the coroutine can back off on.
    """


class BrokenMonitorError(MonitorError):
    """The monitor was poisoned: an exception escaped a critical section
    with shared state possibly corrupt, and the monitor now fails fast.

    All current and future waiters/submitters receive this error (carrying
    the original ``cause``) instead of hanging on state that will never be
    repaired.  ``Monitor.reset()`` is the explicit escape hatch once the
    invariants have been re-established.
    """

    def __init__(self, message: str, cause: BaseException | None = None):
        super().__init__(message)
        self.cause = cause
