"""Explicit atomic primitives for the free-threaded CPython lane.

Several hot paths in this repo were built on *GIL atomicity*: ``next`` on an
``itertools.count`` (one C call, atomic while the GIL serializes bytecode),
bare-int module counters bumped from one place, plain attribute stores used
as state hand-offs.  Free-threaded CPython (PEP 703, 3.13t/3.14t) removes
the GIL, and with it every one of those implicit guarantees — exactly the
category of implicit-synchronization assumption the paper's §4.2.2
atomic-variable strategy (and Ferles et al.'s explicit-signal synthesis)
exists to make explicit.

This module is the substitution point.  Each primitive has two
implementations selected **once at import time** by :data:`GIL_ENABLED`:

* **GIL build** — collapses to today's zero-cost forms (``AtomicCounter``
  *is* an ``itertools.count`` draw: one C call, no lock, no extra store);
* **free-threaded build** (or ``REPRO_ATOMICS=locked`` forced on any
  build, which the stress tests use) — explicitly locked forms with the
  same API and the same value sequences.

What still does *not* need a primitive on free-threaded builds — the
audited contract the rest of the tree relies on (see the atomicity-audit
table in docs/performance.md):

* single ``list``/``dict``/``deque`` operations (``append``, ``pop``,
  ``popleft``, ``len``, item get/set) remain atomic: free-threaded CPython
  guards each built-in container with a per-object lock (PEP 703);
* loads and stores of *one* attribute (slot or instance dict) are atomic
  pointer accesses with acquire/release ordering — racy flag reads such as
  ``chaos.enabled`` or ``Monitor._broken`` stay sound, as does the
  value-before-state publication in :class:`repro.active.futures.LightFuture`;
* read-modify-write (``x += 1``, check-then-set) was **never** atomic,
  GIL or not, unless it compiled to a single C call — those sites are the
  ones ported onto this module.
"""

from __future__ import annotations

import itertools
import os
import platform as _platform
import sys
import threading

__all__ = [
    "GIL_ENABLED",
    "FORCED_LOCKED",
    "AtomicCounter",
    "GilAtomicCounter",
    "LockedAtomicCounter",
    "AtomicFlag",
    "AtomicRef",
    "build_info",
]


def _probe_gil() -> bool:
    """True when this interpreter is currently running with the GIL.

    ``sys._is_gil_enabled`` exists from 3.13 on (True on regular builds,
    and True even on a free-threaded build launched with ``PYTHON_GIL=1``);
    its absence means a pre-3.13 interpreter, where the GIL always exists.
    """
    is_enabled = getattr(sys, "_is_gil_enabled", None)
    if is_enabled is None:
        return True
    return bool(is_enabled())


#: ``REPRO_ATOMICS=locked`` forces the explicitly locked implementations on
#: an ordinary GIL build — how the test suite exercises the free-threaded
#: lane's code paths without a 3.13t interpreter.
FORCED_LOCKED = os.environ.get("REPRO_ATOMICS", "").strip().lower() == "locked"

#: The one flag the whole layer keys on, fixed at import time.  True ⇒
#: GIL-atomic fast forms are safe; False ⇒ every primitive locks.
GIL_ENABLED = _probe_gil() and not FORCED_LOCKED


class GilAtomicCounter:
    """Fetch-and-add counter for GIL builds: a raw ``itertools.count``.

    ``next()`` returns the current value and advances by ``step`` — one
    C-level call, atomic under the GIL, identical in cost to the bare
    ``next(count)`` it replaces.  ``peek()`` (the next value that *would*
    be issued) is a cold diagnostic and parses the count's repr rather
    than taxing the hot path with a shadow store.
    """

    __slots__ = ("_count",)

    def __init__(self, initial: int = 0, step: int = 1):
        self._count = itertools.count(initial, step)  # monlint: disable=W014

    def next(self) -> int:
        """Atomically return the current value and advance by ``step``."""
        return next(self._count)

    def peek(self) -> int:
        """The next value :meth:`next` would return (racy, diagnostic)."""
        # repr is "count(7)" or "count(8, 2)"
        inner = repr(self._count)[6:-1]
        return int(inner.split(",")[0])

    def __repr__(self):
        return f"<GilAtomicCounter next={self.peek()}>"


class LockedAtomicCounter:
    """Fetch-and-add counter for free-threaded builds: one small lock.

    Same value sequence as :class:`GilAtomicCounter` for any
    ``(initial, step)``; ``peek`` is an atomic attribute load (no lock —
    int rebinds are pointer stores on every build).
    """

    __slots__ = ("_value", "_step", "_lock")

    def __init__(self, initial: int = 0, step: int = 1):
        self._value = initial
        self._step = step
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            value = self._value
            self._value = value + self._step
            return value

    def peek(self) -> int:
        return self._value

    def __repr__(self):
        return f"<LockedAtomicCounter next={self._value}>"


#: The build-selected counter.  Hot paths instantiate ``AtomicCounter`` and
#: get the zero-cost form exactly when zero-cost is correct.
AtomicCounter = GilAtomicCounter if GIL_ENABLED else LockedAtomicCounter


class AtomicFlag:
    """A boolean flag safe on every build.

    Plain ``set``/``clear``/truth-test are single attribute stores/loads —
    atomic with acquire/release ordering on free-threaded builds, trivially
    atomic under the GIL — so polling a flag stays lock-free everywhere.
    :meth:`test_and_set` is a read-modify-write and therefore locks on
    *both* builds (``if not flag: flag = True`` never was atomic: the GIL
    can be released between the bytecodes).
    """

    __slots__ = ("_set", "_lock")

    def __init__(self, value: bool = False):
        self._set = bool(value)
        self._lock = threading.Lock()

    def set(self) -> None:
        self._set = True

    def clear(self) -> None:
        self._set = False

    def test_and_set(self) -> bool:
        """Atomically set the flag; return the *previous* value."""
        with self._lock:
            old = self._set
            self._set = True
            return old

    def __bool__(self) -> bool:
        return self._set

    def __repr__(self):
        return f"<AtomicFlag {'set' if self._set else 'clear'}>"


class AtomicRef:
    """A reference cell with atomic load/store and locked CAS/swap.

    ``get``/``set`` are single attribute accesses (atomic on every build);
    :meth:`compare_and_swap` and :meth:`swap` are read-modify-writes and
    lock on both builds.  Used as a *generation cell*: publish an immutable
    snapshot (or a monotonically replaced stamp) that racy readers may load
    without synchronization.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value=None):
        self._value = value
        self._lock = threading.Lock()

    def get(self):
        return self._value

    def set(self, value) -> None:
        self._value = value

    def swap(self, value):
        """Atomically store ``value``; return the previous value."""
        with self._lock:
            old = self._value
            self._value = value
            return old

    def compare_and_swap(self, expect, update) -> bool:
        """Store ``update`` iff the current value *is* ``expect``."""
        with self._lock:
            if self._value is not expect:
                return False
            self._value = update
            return True

    def update(self, fn):
        """Atomically replace the value with ``fn(old)``; return the new."""
        with self._lock:
            new = fn(self._value)
            self._value = new
            return new

    def __repr__(self):
        return f"<AtomicRef {self._value!r}>"


def build_info() -> dict:
    """Interpreter build metadata stamped into every ``BENCH_*.json``.

    Trajectories measured under the GIL and without it must never be
    compared silently (a free-threaded interpreter trades single-thread
    speed for scaling); the benchmark gates check ``gil_enabled`` before
    comparing against a committed record.
    """
    try:
        import sysconfig
        ft_build = bool(sysconfig.get_config_var("Py_GIL_DISABLED"))
    except Exception:  # pragma: no cover — sysconfig is stdlib, but be safe
        ft_build = False
    return {
        "python": _platform.python_version(),
        "implementation": _platform.python_implementation(),
        "free_threading_build": ft_build,
        "gil_enabled": _probe_gil(),
        "atomics": "gil" if GIL_ENABLED else "locked",
        "platform": _platform.platform(),
        "machine": _platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }
