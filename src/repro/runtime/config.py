"""Framework-wide configuration.

Mirrors the runtime knobs the paper exposes: whether asynchronous execution
is enabled at all (§1.6 step 3: "the user can easily disable asynchronous
executions at runtime by simply passing a flag"), the combining batch size
(§3.3.2 fixes five tasks per combining turn), the per-server bounded-queue
capacity, and the cap on monitor server threads (§3.3.4).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field


def _hardware_threads() -> int:
    return os.cpu_count() or 1


@dataclass
class Config:
    """Mutable runtime configuration; one process-global instance."""

    #: Master switch for delegated/asynchronous execution.  When False every
    #: ActiveMonitor behaves as a plain (synchronous) automatic-signal monitor.
    asynchronous_enabled: bool = True

    #: Number of queued tasks a combiner executes per lock acquisition
    #: (the paper's implementation uses five).
    combining_batch: int = 5

    #: Capacity of each server's single-consumer bounded task queue.
    task_queue_capacity: int = 64

    #: Upper bound on concurrently live monitor server threads.  ``None``
    #: means "derive from hardware" exactly as §3.3.4 prescribes.
    max_server_threads: int | None = None

    #: Threshold above which inactive (waiter-less) predicate records are
    #: recycled, expressed as a multiple of the live thread count (§2.5.1
    #: describes a 2n inactive list).
    inactive_predicate_factor: int = 2

    #: Collect phase timings (await / lock / relay / tag management).  Off by
    #: default because timers cost more than the counters.
    phase_timing: bool = False

    #: Dynamic monitor-usage checks (lock-order assertions + predicate
    #: purity probes, see :mod:`repro.analysis.runtime`).  Reflects the
    #: checker state; toggle it via ``repro.analysis.runtime.enable_checks``
    #: / ``disable_checks`` so the monitor hot path's fast flag stays in
    #: sync.  Off by default: when off the only cost is one boolean test
    #: per monitor enter/exit.
    analysis_checks: bool = False

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def effective_server_cap(self) -> int:
        """Resolve the server-thread cap against available hardware.

        Python server threads are parked (never spinning) when idle, so the
        floor is generous even on small machines; the paper's stricter
        hardware coupling can be restored via ``max_server_threads``.
        """
        if self.max_server_threads is not None:
            return max(0, self.max_server_threads)
        return max(8, _hardware_threads() - 1)


_config = Config()


def get_config() -> Config:
    """Return the process-global configuration object."""
    return _config
