"""Framework-wide configuration.

Mirrors the runtime knobs the paper exposes: whether asynchronous execution
is enabled at all (§1.6 step 3: "the user can easily disable asynchronous
executions at runtime by simply passing a flag"), the combining batch size
(§3.3.2 fixes five tasks per combining turn), the per-server bounded-queue
capacity, and the cap on monitor server threads (§3.3.4).

Hot paths never call :func:`get_config` per operation.  Every public-field
assignment on :class:`Config` bumps a process-global *generation* counter,
and :func:`config_snapshot` returns an immutable, slotted
:class:`ConfigSnapshot` that is rebuilt only when the generation moved.
Monitor enter/exit, relay signaling, and the combining loop read the
snapshot: one global load + one integer compare in the common case, zero
allocations (see docs/performance.md).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro.runtime.atomics import AtomicCounter


def _hardware_threads() -> int:
    return os.cpu_count() or 1


#: Bumped on every public-field assignment of any :class:`Config`; snapshot
#: caches validate against it.  The *draw* goes through the explicit
#: atomics layer (``_generation += 1`` was GIL-atomic only by accident of
#: never crossing a bytecode boundary — and in fact never was atomic); the
#: published module int stays a plain load for readers, who only ever
#: compare for inequality: int rebinds are atomic pointer stores on every
#: build, so a torn read is impossible and a stale read merely delays the
#: refresh by one operation.
_gen_counter = AtomicCounter(1)
_generation = 0


@dataclass
class Config:
    """Mutable runtime configuration; one process-global instance."""

    #: Master switch for delegated/asynchronous execution.  When False every
    #: ActiveMonitor behaves as a plain (synchronous) automatic-signal monitor.
    asynchronous_enabled: bool = True

    #: Number of queued tasks a combiner executes per lock acquisition
    #: (the paper's implementation uses five).
    combining_batch: int = 5

    #: Capacity of each server's single-consumer bounded task queue.
    task_queue_capacity: int = 64

    #: Upper bound on concurrently live monitor server threads.  ``None``
    #: means "derive from hardware" exactly as §3.3.4 prescribes.
    max_server_threads: int | None = None

    #: Threshold above which inactive (waiter-less) predicate records are
    #: recycled, expressed as a multiple of the live thread count (§2.5.1
    #: describes a 2n inactive list).
    inactive_predicate_factor: int = 2

    #: Collect phase timings (await / lock / relay / tag management).  Off by
    #: default because timers cost more than the counters.
    phase_timing: bool = False

    #: Dynamic monitor-usage checks (lock-order assertions + predicate
    #: purity probes, see :mod:`repro.analysis.runtime`).  Reflects the
    #: checker state; toggle it via ``repro.analysis.runtime.enable_checks``
    #: / ``disable_checks`` so the monitor hot path's fast flag stays in
    #: sync.  Off by default: when off the only cost is one boolean test
    #: per monitor enter/exit.
    analysis_checks: bool = False

    #: Evaluate ``waituntil`` predicates through code-generated flat
    #: closures (:mod:`repro.core.compiled`) instead of walking the
    #: Expr/Predicate object tree.  On by default; turn off to A/B the
    #: interpreter (the microbenchmarks do exactly that).
    compile_predicates: bool = True

    #: Dependency-filtered relay: monitor writes are tracked per shared
    #: variable and an exit only re-evaluates untagged waiters whose
    #: predicate read sets intersect the exit's dirty set (plus memoizes
    #: shared-expression values per write generation).  On by default; turn
    #: off to A/B the exhaustive untagged scan — correctness is identical,
    #: only the amount of redundant re-evaluation changes.
    track_dependencies: bool = True

    #: Ahead-of-time signal placement: section exits of ``@monitor_compile``
    #: methods whose write sets were statically matched against the class's
    #: wait predicates skip the relay search and run a direct targeted
    #: signal instead (docs/performance.md).  On by default; turn off to
    #: A/B the dependency-tracked relay — wake sets are identical (the
    #: differential suite in tests/test_aot_signal.py proves it), only the
    #: per-exit search work changes.  Requires ``track_dependencies``.
    aot_signal: bool = True

    #: Poison a monitor (``BrokenMonitorError`` for all current and future
    #: waiters/submitters, see docs/robustness.md) when an exception escapes
    #: one of its critical sections — a monitor method, ``synchronized``
    #: block, delegated task body (retries exhausted), or multisynch block.
    #: Off by default: many programs use exceptions as ordinary control flow
    #: out of monitor methods and their state stays consistent.  Timeout /
    #: cancellation / broken-monitor control-flow errors never poison.
    poison_on_exception: bool = False

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        if not name.startswith("_"):
            # atomic draw + atomic publish: two racing mutations each get a
            # unique generation, and whichever publish lands last still
            # differs from every cached stamp, forcing the refresh
            global _generation
            _generation = _gen_counter.next()

    def effective_server_cap(self) -> int:
        """Resolve the server-thread cap against available hardware.

        Python server threads are parked (never spinning) when idle, so the
        floor is generous even on small machines; the paper's stricter
        hardware coupling can be restored via ``max_server_threads``.
        """
        if self.max_server_threads is not None:
            return max(0, self.max_server_threads)
        return max(8, _hardware_threads() - 1)


class ConfigSnapshot:
    """Immutable point-in-time copy of every :class:`Config` field.

    Safe to hold across a blocking wait: readers that must observe live
    updates re-fetch via :func:`config_snapshot` (cheap), while loop bodies
    deliberately hoist one snapshot per operation.
    """

    __slots__ = (
        "generation",
        "asynchronous_enabled",
        "combining_batch",
        "task_queue_capacity",
        "max_server_threads",
        "inactive_predicate_factor",
        "phase_timing",
        "analysis_checks",
        "compile_predicates",
        "track_dependencies",
        "aot_signal",
        "poison_on_exception",
    )

    def __init__(self, cfg: Config, generation: int):
        self.generation = generation
        self.asynchronous_enabled = cfg.asynchronous_enabled
        self.combining_batch = cfg.combining_batch
        self.task_queue_capacity = cfg.task_queue_capacity
        self.max_server_threads = cfg.max_server_threads
        self.inactive_predicate_factor = cfg.inactive_predicate_factor
        self.phase_timing = cfg.phase_timing
        self.analysis_checks = cfg.analysis_checks
        self.compile_predicates = cfg.compile_predicates
        self.track_dependencies = cfg.track_dependencies
        self.aot_signal = cfg.aot_signal
        self.poison_on_exception = cfg.poison_on_exception


_config = Config()
_snapshot: ConfigSnapshot = ConfigSnapshot(_config, _generation)


def get_config() -> Config:
    """Return the process-global configuration object (for *mutation* and
    cold reads; hot paths use :func:`config_snapshot`)."""
    return _config


def config_snapshot() -> ConfigSnapshot:
    """Return the current immutable config view, rebuilding it only when a
    field changed since the last call (generation check)."""
    global _snapshot
    snap = _snapshot
    if snap.generation != _generation:
        snap = ConfigSnapshot(_config, _generation)
        _snapshot = snap
    return snap


def config_generation() -> int:
    """The current global config generation (exposed for caches that embed
    their own validity stamp)."""
    return _generation
