"""Runtime substrate shared by every subsystem.

Provides monotonically increasing object ids (the basis of ``multisynch``'s
deadlock-free lock ordering), framework-wide configuration, error types, and
the instrumentation counters that back the paper's context-switch /
predicate-evaluation / false-signal measurements.
"""

from repro.runtime.atomics import (
    GIL_ENABLED,
    AtomicCounter,
    AtomicFlag,
    AtomicRef,
    build_info,
)
from repro.runtime.config import Config, get_config
from repro.runtime.errors import (
    BrokenMonitorError,
    CompositionError,
    MonitorError,
    NestedMultisynchError,
    NotOwnerError,
    PredicateError,
    ReproError,
    TaskError,
    WaitCancelledError,
    WaitTimeoutError,
)
from repro.runtime.ids import next_monitor_id
from repro.runtime.metrics import Metrics, PhaseTimer, global_metrics
from repro.runtime.tracing import TraceEvent, Tracer

__all__ = [
    "GIL_ENABLED",
    "AtomicCounter",
    "AtomicFlag",
    "AtomicRef",
    "build_info",
    "Config",
    "get_config",
    "ReproError",
    "MonitorError",
    "PredicateError",
    "NotOwnerError",
    "NestedMultisynchError",
    "CompositionError",
    "TaskError",
    "WaitTimeoutError",
    "WaitCancelledError",
    "BrokenMonitorError",
    "next_monitor_id",
    "Metrics",
    "PhaseTimer",
    "global_metrics",
    "Tracer",
    "TraceEvent",
]
