"""Event tracing: a bounded ring buffer of monitor synchronization events.

Debugging a signaling bug from counters alone is painful; a trace answers
*what happened, in what order*.  Attach a tracer to a monitor and every
wait / signal / wakeup / broadcast is recorded with a timestamp and the
acting thread::

    from repro.runtime.tracing import Tracer

    tracer = Tracer(capacity=512)
    tracer.attach(queue)
    ...
    for event in tracer.events():
        print(event)
    # TraceEvent(t=0.0012, thread=123, monitor=7, kind='wait', detail='(count > 0)')

The tracer hooks the condition manager's metric bumps non-invasively (it
wraps ``Metrics.bump`` for the monitor's metrics object), so tracing costs
one method call per event and nothing when detached.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.monitor import Monitor

#: metric counter names treated as traceable events
_EVENT_COUNTERS = {
    "signals": "signal",
    "broadcasts": "broadcast",
    "waits": "wait",
    "wakeups": "wakeup",
    "futile_wakeups": "futile_wakeup",
}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded synchronization event."""

    t: float          #: seconds since the tracer attached
    thread: int       #: acting thread id
    monitor: int      #: monitor id
    kind: str         #: signal | broadcast | wait | wakeup | futile_wakeup
    detail: str = ""

    def __str__(self):
        return (f"[{self.t:9.6f}] tid={self.thread} mon#{self.monitor} "
                f"{self.kind} {self.detail}".rstrip())


class Tracer:
    """Bounded ring buffer of TraceEvents across one or more monitors."""

    def __init__(self, capacity: int = 1024):
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._attached: list[tuple[Any, Any]] = []   # (metrics, original bump)

    # ------------------------------------------------------------- recording
    def record(self, monitor_id: int, kind: str, detail: str = "") -> None:
        event = TraceEvent(
            t=time.perf_counter() - self._t0,
            thread=threading.get_ident(),
            monitor=monitor_id,
            kind=kind,
            detail=detail,
        )
        with self._lock:
            self._buffer.append(event)

    # ------------------------------------------------------------ attachment
    def attach(self, monitor: "Monitor") -> None:
        """Start recording this monitor's signaling events."""
        metrics = monitor.metrics
        original_bump = metrics.bump
        monitor_id = monitor.monitor_id
        tracer = self

        def traced_bump(name: str, amount: int = 1,
                        _orig=original_bump, _mid=monitor_id):
            kind = _EVENT_COUNTERS.get(name)
            if kind is not None:
                tracer.record(_mid, kind)
            _orig(name, amount)

        metrics.bump = traced_bump  # type: ignore[method-assign]
        self._attached.append((metrics, original_bump))

    def detach_all(self) -> None:
        """Stop recording on every attached monitor."""
        for metrics, original in self._attached:
            metrics.bump = original  # type: ignore[method-assign]
        self._attached.clear()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.detach_all()

    # --------------------------------------------------------------- reading
    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Snapshot of recorded events, optionally filtered by kind."""
        with self._lock:
            snapshot = list(self._buffer)
        if kind is None:
            return snapshot
        return [e for e in snapshot if e.kind == kind]

    def counts(self) -> dict[str, int]:
        """Event counts by kind (from the retained window)."""
        out: dict[str, int] = {}
        for event in self.events():
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)
