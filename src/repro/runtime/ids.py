"""Global monotonically increasing ids for monitor objects.

Every monitor gets a unique integer id at construction time.  ``multisynch``
acquires monitor locks in increasing-id order, which is the paper's
deadlock-avoidance rule (§4.1): with all multi-object acquisitions following
one global total order, no cycle of lock waits can form.
"""

from __future__ import annotations

from repro.runtime.atomics import AtomicCounter

# Correctness here underpins deadlock freedom, so the draw goes through the
# explicit atomics layer: a raw itertools.count on GIL builds (one atomic C
# call), a locked fetch-and-add on free-threaded builds — never a bare
# ``next(count)`` whose atomicity silently evaporates without the GIL.
_counter = AtomicCounter(1)


def next_monitor_id() -> int:
    """Return the next unique monitor id (thread-safe, strictly increasing)."""
    return _counter.next()
