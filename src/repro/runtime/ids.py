"""Global monotonically increasing ids for monitor objects.

Every monitor gets a unique integer id at construction time.  ``multisynch``
acquires monitor locks in increasing-id order, which is the paper's
deadlock-avoidance rule (§4.1): with all multi-object acquisitions following
one global total order, no cycle of lock waits can form.
"""

from __future__ import annotations

import itertools
import threading

_counter = itertools.count(1)
_lock = threading.Lock()


def next_monitor_id() -> int:
    """Return the next unique monitor id (thread-safe, strictly increasing)."""
    # itertools.count.__next__ is atomic under CPython, but we do not rely on
    # that implementation detail: correctness here underpins deadlock freedom.
    with _lock:
        return next(_counter)
