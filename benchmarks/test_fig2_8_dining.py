"""Fig. 2.8 — dining philosophers (single-monitor) runtime."""

from repro.bench.figures_ch2 import fig2_8_dining
from repro.problems.dining import run_dining_monitor


def test_fig2_8(benchmark, record):
    fig = fig2_8_dining()
    record("fig2_8_dining", fig.render())
    benchmark(lambda: run_dining_monitor("autosynch", 5, 40))
