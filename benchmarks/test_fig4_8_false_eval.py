"""Fig. 4.8 — pizza store false evaluations: AS vs AV vs CC."""

from repro.bench.figures_ch45 import fig4_8_false_evaluations
from repro.multi import manager
from repro.problems.pizza_store import run_pizza_store
from repro.runtime.config import get_config


def test_fig4_8(benchmark, record):
    fig = fig4_8_false_evaluations()
    record("fig4_8_false_eval", fig.render())
    benchmark(lambda: run_pizza_store("av", 2, 8))


def test_as_false_evals_collapse_under_dependency_tracking():
    """The multisynch exit hook skips waiters whose read sets are disjoint
    from the exiting section's dirty set (docs/performance.md, Fig 4.8
    note in EXPERIMENTS.md).  On the AS variant — the strategy that
    re-evaluates global conditions on *every* exit — that filter must
    collapse false evaluations, not just shave them."""
    cfg = get_config()
    prior = cfg.track_dependencies
    try:
        cfg.track_dependencies = True
        tracked = run_pizza_store("as", 8, 32).metrics
        manager.global_condition_metrics.reset()
        cfg.track_dependencies = False
        untracked = run_pizza_store("as", 8, 32).metrics
    finally:
        cfg.track_dependencies = prior
    assert untracked["false_evals"] > 0, "AS workload produced no contention"
    assert tracked["false_evals"] * 2 < untracked["false_evals"], (
        f"dependency tracking did not reduce AS false evaluations: "
        f"{tracked['false_evals']} tracked vs {untracked['false_evals']} untracked"
    )
    assert tracked["relay_dirty_skips"] > 0, "exit-hook dirty filter never fired"
