"""Fig. 4.8 — pizza store false evaluations: AS vs AV vs CC."""

from repro.bench.figures_ch45 import fig4_8_false_evaluations
from repro.problems.pizza_store import run_pizza_store


def test_fig4_8(benchmark, record):
    fig = fig4_8_false_evaluations()
    record("fig4_8_false_eval", fig.render())
    benchmark(lambda: run_pizza_store("av", 2, 8))
