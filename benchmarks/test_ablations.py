"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.bench.ablations import (
    ablation_av_vs_cc,
    ablation_combining_batch,
    ablation_scqueue,
    ablation_tags,
)
from repro.problems.round_robin import run_round_robin


def test_ablation_combining_batch(benchmark, record):
    fig = ablation_combining_batch()
    record("ablation_combining_batch", fig.render())
    benchmark(lambda: run_round_robin("autosynch", 4, 20))


def test_ablation_av_vs_cc(benchmark, record):
    fig = ablation_av_vs_cc()
    record("ablation_av_vs_cc", fig.render())
    benchmark(lambda: run_round_robin("autosynch", 4, 20))


def test_ablation_scqueue(benchmark, record):
    text = ablation_scqueue()
    record("ablation_scqueue", text)
    benchmark(lambda: run_round_robin("autosynch", 4, 20))


def test_ablation_tags(benchmark, record):
    fig = ablation_tags()
    record("ablation_tags", fig.render())
    benchmark(lambda: run_round_robin("autosynch", 4, 20))


def test_ablation_stm_retry(benchmark, record):
    from repro.bench.ablations import ablation_stm_retry

    text = ablation_stm_retry()
    record("ablation_stm_retry", text)
    benchmark(lambda: run_round_robin("autosynch", 4, 20))
