"""Shared fixtures for the figure-regeneration benchmark suite.

Each bench module regenerates one paper table/figure (printing the same
rows/series the paper reports, and writing them to ``benchmarks/results/``)
and times one representative configuration with pytest-benchmark.

Every ``BENCH_*.json`` report written by this suite carries a ``build``
block (:data:`BUILD` — interpreter version, free-threading build flag,
whether the GIL was enabled, platform, CPU count) so that trajectories
measured under the GIL and without it are never compared silently: a
free-threaded interpreter trades single-thread speed for scaling, and a
ratio gate that mixed the two regimes would fire (or pass) for the wrong
reason.  Gate tests call :func:`gil_mismatch` on the committed record and
skip — loudly, with both builds named — instead of comparing across the
boundary.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.runtime.atomics import build_info

RESULTS = pathlib.Path(__file__).parent / "results"

#: metadata of the interpreter running this suite, stamped into every report
BUILD = build_info()


def stamp_build(report: dict) -> dict:
    """Attach the running interpreter's build block to a bench report."""
    report["build"] = BUILD
    return report


def gil_mismatch(committed: dict | None) -> str | None:
    """Reason string when ``committed`` came from the other GIL regime.

    Returns ``None`` when the records are comparable (same ``gil_enabled``).
    A committed record with no ``build`` block predates the stamping and is
    treated as a GIL-build record (everything before the free-threaded lane
    was measured under the GIL).
    """
    if committed is None:
        return None
    recorded = committed.get("build", {}).get("gil_enabled", True)
    if bool(recorded) == bool(BUILD["gil_enabled"]):
        return None
    return (
        f"committed record measured with gil_enabled={recorded}, this "
        f"interpreter has gil_enabled={BUILD['gil_enabled']} "
        f"({BUILD['python']}, free_threading_build="
        f"{BUILD['free_threading_build']}) — GIL and no-GIL trajectories "
        f"are never compared"
    )


def skip_if_gil_mismatch(committed: dict | None) -> None:
    """``pytest.skip`` a gate when the committed record is cross-regime."""
    reason = gil_mismatch(committed)
    if reason is not None:
        pytest.skip(reason)


@pytest.fixture
def record():
    """Persist a rendered figure/table under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / f"{name}.txt").write_text(text + "\n")

    return _record
