"""Shared fixtures for the figure-regeneration benchmark suite.

Each bench module regenerates one paper table/figure (printing the same
rows/series the paper reports, and writing them to ``benchmarks/results/``)
and times one representative configuration with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record():
    """Persist a rendered figure/table under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / f"{name}.txt").write_text(text + "\n")

    return _record
