"""Fig. 2.12 — ticket readers/writers runtime ratio vs delay."""

from repro.bench.figures_ch2 import fig2_12_rw_ratio
from repro.problems.readers_writers import run_readers_writers


def test_fig2_12(benchmark, record):
    fig = fig2_12_rw_ratio()
    record("fig2_12_rw_ratio", fig.render())
    benchmark(lambda: run_readers_writers("autosynch", 2, 10, 15, delay=0.0005))
