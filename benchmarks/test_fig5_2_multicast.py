"""Fig. 5.2 — multicast channels communication throughput."""

from repro.bench.figures_ch45 import fig5_2_multicast
from repro.problems.multicast import run_multicast


def test_fig5_2(benchmark, record):
    fig = fig5_2_multicast()
    record("fig5_2_multicast", fig.render())
    benchmark(lambda: run_multicast("cc", 3, 20))
