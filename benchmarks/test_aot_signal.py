"""AOT signal placement benchmarks, with a ratio-based perf gate.

Times the section-exit signaling cost in three lanes:

* ``direct`` — the default: AOT-planned exits run
  :meth:`ConditionManager.direct_signal` (no tag probe, no relay search);
* ``tracked`` — ``Config.aot_signal = False``: the PR-5 dependency-tracked
  relay (the pre-AOT behavior);
* ``exhaustive`` — ``Config.track_dependencies = False``: the original
  scan-everything relay.

Workloads: a bounded buffer and a readers-writers monitor driven end to end
through compiled methods with idle waiters parked, and the 1-of-256 sparse
pool from BENCH_relay_dirty.json driven at manager level.  For the sparse
lane the per-op *write* cost (the ``__setattr__`` dirty-tracking proxy) is
measured separately and subtracted, so the committed exit-cost ratio
compares signaling work against signaling work.

Results are written to ``BENCH_aot_signal.json`` at the repo root (set
``REPRO_WRITE_BENCH=1``).  The CI perf-smoke job re-runs these benches and
gates on *ratios* (same host, same process), not absolute times: the gate
fails when a measured ratio falls more than 30% below the committed one,
plus a static check that the committed record shows the direct exit beating
the tracked relay by ≥2× on the sparse lane.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

import pytest

from benchmarks.conftest import skip_if_gil_mismatch, stamp_build
from repro.analysis.aot import MethodSignalPlan
from repro.core.expressions import S
from repro.core.monitor import Monitor
from repro.core.predicates import Predicate
from repro.core.waiter import Waiter
from repro.preprocess import monitor_compile, waituntil
from repro.runtime.config import get_config

BENCH_FILE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_aot_signal.json"
)

RATIO_TOLERANCE = 0.30
#: static acceptance floor on the committed record (ISSUE 7): the sparse
#: direct-signal exit must beat the tracked relay by at least this factor
SPARSE_EXIT_MIN_SPEEDUP = 2.0
#: ratios the CI gate re-measures and compares against the committed record.
#: Only the manager-level sparse ratios are gated: the end-to-end bounded
#: buffer / readers-writers lanes park real threads, and scheduler noise
#: swings their per-op times by more than the tolerance — they are recorded
#: for the docs but not gated.  The raw (not baseline-subtracted) tracked
#: ratio is gated because subtracting the shared write cost amplifies
#: run-to-run variance; the ≥2× acceptance bar applies to the committed
#: exit-cost ratio, where best-of-N discipline holds.
GATED_RATIOS = ("sparse_raw_direct_vs_tracked",)
#: absolute live floor for the asymptotic win: the direct exit must beat
#: the exhaustive scan by at least this factor on every run (observed
#: 27–86×; committed-relative gating is too noisy when the direct exit's
#: small net cost sits in the denominator)
EXHAUSTIVE_MIN_SPEEDUP = 10.0


def best_ns_per_op(fn, number: int, repeats: int = 5) -> float:
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        fn(number)
        dt = time.perf_counter_ns() - t0
        if best is None or dt < best:
            best = dt
    return best / number


# ------------------------------------------------------------- workloads


@monitor_compile
class BoundedBuffer(Monitor):
    def __init__(self, capacity):
        super().__init__()
        self.items = []
        self.count = 0
        self.capacity = capacity
        self.closed = 0

    def put(self, v):
        waituntil(self.count < self.capacity)
        self.items.append(v)
        self.count += 1

    def take(self):
        waituntil(self.count > 0)
        v = self.items.pop()
        self.count -= 1
        return v

    def await_close(self):
        waituntil(self.closed != 0)

    def close(self):
        self.closed = 1


@monitor_compile
class ReadersWriters(Monitor):
    def __init__(self):
        super().__init__()
        self.readers = 0
        self.writer = 0

    def start_read(self):
        waituntil(self.writer == 0)
        self.readers += 1

    def end_read(self):
        self.readers -= 1

    def start_write(self):
        waituntil((self.readers == 0) & (self.writer == 0))
        self.writer = 1

    def end_write(self):
        self.writer = 0


class _ParkedThreads:
    """Park daemon threads inside a blocking monitor call; release on exit."""

    def __init__(self, n, park, release):
        self.release_fn = release
        self.threads = [
            threading.Thread(target=park, daemon=True) for _ in range(n)
        ]
        for t in self.threads:
            t.start()
        time.sleep(0.1)   # let them all reach the wait

    def release(self):
        self.release_fn()
        for t in self.threads:
            t.join(5.0)


def bench_bounded_buffer() -> float:
    """put/take pairs on a never-full buffer with 16 idle close-waiters
    parked: the exit cost with waiters present but unaffected."""
    m = BoundedBuffer(1 << 30)
    parked = _ParkedThreads(16, m.await_close, m.close)
    try:
        def run(n):
            put, take = m.put, m.take
            for i in range(n):
                put(i)
                take()

        return best_ns_per_op(run, 5000)
    finally:
        parked.release()


def bench_readers_writers() -> float:
    """start_read/end_read cycles with one pinned reader and 8 writers
    parked: every exit dirties a variable all parked waiters read."""
    n_writers = 8
    m = ReadersWriters()
    m.start_read()   # pin readers ≥ 1 so the writers never wake
    threads = [
        threading.Thread(target=m.start_write, daemon=True)
        for _ in range(n_writers)
    ]
    for t in threads:
        t.start()
    time.sleep(0.1)   # let them all reach the wait
    try:
        def run(n):
            start, end = m.start_read, m.end_read
            for _ in range(n):
                start()
                end()

        return best_ns_per_op(run, 2000)
    finally:
        # drop the pinned reader, then drain the writers one at a time:
        # each completed start_write leaves writer=1, so the next parked
        # writer can only proceed after an end_write
        m.end_read()
        for _ in range(n_writers):
            deadline = time.monotonic() + 5.0
            while not m.writer and time.monotonic() < deadline:
                time.sleep(0.002)
            m.end_write()
        for t in threads:
            t.join(5.0)


# sparse 1-of-256: manager-level, one write per exit, one matching waiter


@monitor_compile
class SparseBoard(Monitor):
    """Minimal compiled class so the manager is direct-enabled; the bench
    registers its 256-variable pool and synthesized per-variable plans."""

    def __init__(self):
        super().__init__()
        self.v0 = 0

    def poke(self):
        self.v0 = 0


def _sparse_pool(n_waiters):
    m = SparseBoard()
    mgr = m._cond_mgr
    names = [f"v{i}" for i in range(n_waiters)]
    for name in names:
        setattr(m, name, 0)
    m._dirty.clear()
    for name in names:
        mgr._register(Waiter(Predicate(getattr(S, name) != 0), m._lock))
    plans = [
        MethodSignalPlan(method=f"w{i}", write_set=frozenset({names[i]}))
        for i in range(n_waiters)
    ]
    with m._lock:
        mgr.relay_signal()   # drain the fresh-park evaluations
    return m, mgr, names, plans


def bench_sparse_write_baseline(n_waiters: int, number: int) -> float:
    """The shared per-op cost both signal lanes pay: one proxy ``setattr``
    per exit, no signaling.  Subtracted to isolate exit cost."""
    m, mgr, names, plans = _sparse_pool(n_waiters)

    def run(n):
        with m._lock:
            j = 0
            for _ in range(n):
                setattr(m, names[j], 0)
                j += 1
                if j == n_waiters:
                    j = 0
            m._dirty.clear()

    return best_ns_per_op(run, number)


def bench_sparse_direct(n_waiters: int, number: int) -> float:
    m, mgr, names, plans = _sparse_pool(n_waiters)

    def run(n):
        with m._lock:
            ds = mgr.direct_signal
            j = 0
            for _ in range(n):
                setattr(m, names[j], 0)
                ds(plans[j])
                j += 1
                if j == n_waiters:
                    j = 0

    return best_ns_per_op(run, number)


def bench_sparse_relay(n_waiters: int, number: int) -> float:
    m, mgr, names, plans = _sparse_pool(n_waiters)

    def run(n):
        with m._lock:
            rs = mgr.relay_signal
            j = 0
            for _ in range(n):
                setattr(m, names[j], 0)
                rs()
                j += 1
                if j == n_waiters:
                    j = 0

    return best_ns_per_op(run, number)


# ------------------------------------------------------------------ suite


def _lane_config(lane: str) -> None:
    cfg = get_config()
    cfg.track_dependencies = lane != "exhaustive"
    cfg.aot_signal = lane == "direct"


def run_suite() -> dict:
    cfg = get_config()
    prior_track = cfg.track_dependencies
    prior_aot = cfg.aot_signal
    prior_compile = cfg.compile_predicates
    lanes: dict[str, dict[str, float]] = {}
    try:
        cfg.compile_predicates = True
        for lane in ("direct", "tracked", "exhaustive"):
            _lane_config(lane)
            sparse_number = 5000 if lane != "exhaustive" else 200
            sparse_fn = (
                bench_sparse_direct if lane == "direct" else bench_sparse_relay
            )
            lanes[lane] = {
                "bounded_buffer": round(bench_bounded_buffer(), 1),
                "readers_writers": round(bench_readers_writers(), 1),
                "sparse_256": round(sparse_fn(256, sparse_number), 1),
            }
        _lane_config("direct")
        write_baseline = round(bench_sparse_write_baseline(256, 20000), 1)
    finally:
        cfg.track_dependencies = prior_track
        cfg.aot_signal = prior_aot
        cfg.compile_predicates = prior_compile

    def exit_cost(lane: str) -> float:
        return max(lanes[lane]["sparse_256"] - write_baseline, 0.1)

    ratios = {
        "sparse_exit_direct_vs_tracked": round(
            exit_cost("tracked") / exit_cost("direct"), 2
        ),
        "sparse_exit_direct_vs_exhaustive": round(
            exit_cost("exhaustive") / exit_cost("direct"), 2
        ),
        "sparse_raw_direct_vs_tracked": round(
            lanes["tracked"]["sparse_256"] / lanes["direct"]["sparse_256"], 2
        ),
        "bounded_buffer_direct_vs_exhaustive": round(
            lanes["exhaustive"]["bounded_buffer"]
            / lanes["direct"]["bounded_buffer"], 2
        ),
        "readers_writers_direct_vs_exhaustive": round(
            lanes["exhaustive"]["readers_writers"]
            / lanes["direct"]["readers_writers"], 2
        ),
        "bounded_buffer_direct_vs_tracked": round(
            lanes["tracked"]["bounded_buffer"]
            / lanes["direct"]["bounded_buffer"], 2
        ),
        "readers_writers_direct_vs_tracked": round(
            lanes["tracked"]["readers_writers"]
            / lanes["direct"]["readers_writers"], 2
        ),
    }
    return stamp_build({
        "unit": "ns_per_op",
        "sparse_write_baseline": write_baseline,
        "lanes": lanes,
        "sparse_exit_ns": {
            lane: round(exit_cost(lane), 1)
            for lane in ("direct", "tracked", "exhaustive")
        },
        "ratios": ratios,
    })


@pytest.fixture(scope="module")
def results():
    committed = None
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())
    fresh = run_suite()
    import os

    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        BENCH_FILE.write_text(json.dumps(fresh, indent=2) + "\n")
    return {"committed": committed, "fresh": fresh}


def test_emit_report(results, capsys):
    with capsys.disabled():
        print("\n" + json.dumps(results["fresh"], indent=2))


def test_direct_lane_skips_all_relay_search_work():
    """ISSUE 7 acceptance: on AOT-matched exits the section exit performs
    zero relay-search work — ``relay_skipped_aot`` grows while
    ``relay_buckets_scanned`` stays flat (measured as deltas after setup,
    so construction-time flushes don't count)."""
    cfg = get_config()
    prior_track, prior_aot = cfg.track_dependencies, cfg.aot_signal
    try:
        _lane_config("direct")
        m, mgr, names, plans = _sparse_pool(64)
        with m._lock:
            skipped0 = mgr.metrics.relay_skipped_aot
            scanned0 = mgr.metrics.relay_buckets_scanned
            for j in range(64):
                setattr(m, names[j], 0)
                mgr.direct_signal(plans[j])
            assert mgr.metrics.relay_skipped_aot - skipped0 == 64
            assert mgr.metrics.relay_buckets_scanned - scanned0 == 0
            assert mgr.metrics.relay_aot_fallbacks == 0
    finally:
        cfg.track_dependencies = prior_track
        cfg.aot_signal = prior_aot


def test_direct_exit_beats_tracked_relay_on_fresh_measurement(results):
    """The direct exit must actually win against the tracked relay on the
    sparse lane in this process (any margin; the ≥2× bar is enforced on the
    committed record below, where best-of-N discipline applies)."""
    assert results["fresh"]["ratios"]["sparse_raw_direct_vs_tracked"] > 1.0


def test_direct_exit_beats_exhaustive_scan_by_wide_margin(results):
    """Absolute floor on the asymptotic win over the pre-PR-5 exhaustive
    relay: ≥10× on the 1-of-256 sparse exit, every run."""
    got = results["fresh"]["ratios"]["sparse_exit_direct_vs_exhaustive"]
    assert got >= EXHAUSTIVE_MIN_SPEEDUP, (
        f"direct exit only {got:.1f}x faster than the exhaustive scan "
        f"(need ≥{EXHAUSTIVE_MIN_SPEEDUP}x)"
    )


def test_static_sparse_exit_speedup_on_committed_record(results):
    """ISSUE 7 gate: the committed record shows the direct-signal exit
    beating the tracked relay by ≥2× on the 1-of-256 sparse lane."""
    committed = results["committed"]
    if committed is None:
        pytest.skip("no committed BENCH_aot_signal.json to gate against")
    got = committed["ratios"]["sparse_exit_direct_vs_tracked"]
    assert got >= SPARSE_EXIT_MIN_SPEEDUP, (
        f"committed sparse exit speedup {got:.2f}x below the "
        f"{SPARSE_EXIT_MIN_SPEEDUP}x acceptance floor"
    )


def test_ratio_gate_vs_committed_record(results):
    """Fail when a gated lane ratio regressed >30% vs the committed
    BENCH_aot_signal.json (same-process ratios, runner-agnostic)."""
    committed = results["committed"]
    if committed is None:
        pytest.skip("no committed BENCH_aot_signal.json to gate against")
    skip_if_gil_mismatch(committed)
    for key in GATED_RATIOS:
        floor = committed["ratios"][key] * (1.0 - RATIO_TOLERANCE)
        measured = results["fresh"]["ratios"][key]
        assert measured >= floor, (
            f"{key}: measured {measured:.2f}x fell >30% below the "
            f"committed {committed['ratios'][key]:.2f}x"
        )
