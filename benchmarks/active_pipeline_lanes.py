"""Measurement lanes for the ActiveMonitor delegation pipeline benchmark.

Shared between ``benchmarks/test_active_pipeline.py`` (the committed perf
record + CI gate) and ad-hoc baseline captures.  Each lane returns
operations per second (higher is better); latency lanes return ns/op.

Lanes (the ISSUE-3 acceptance set):

* ``queue_ops_{1,4,8}p`` — items/s through the MPSC task queue with N
  producer threads and the single consumer draining concurrently;
* ``submit_complete_8p`` — delegated submit→complete round-trips/s on one
  ActiveMonitor under 8 producer threads (Rule 2 pipelining);
* ``submit_get_latency`` — single-thread submit→``Future.get`` ns/op;
* ``multisynch_cycle_{2,4}`` — ``with multisynch(...): pass`` blocks/s over
  the same monitor set re-acquired in a loop (the §4.1 acquisition path).
"""

from __future__ import annotations

import threading
import time

from repro.active.activemonitor import ActiveMonitor, asynchronous
from repro.active.scqueue import SingleConsumerBoundedQueue
from repro.core.monitor import Monitor
from repro.multi.multisync import multisynch


def _best(fn, repeats: int = 3) -> float:
    """Best (max ops/s) of ``repeats`` runs — the least-noise estimator."""
    best = 0.0
    for _ in range(repeats):
        best = max(best, fn())
    return best


# --------------------------------------------------------------- queue lanes
def queue_ops(n_producers: int, total: int = 24_000, capacity: int = 64,
              queue_factory=SingleConsumerBoundedQueue) -> float:
    """Items/s through the queue with concurrent producers + one consumer."""
    per = total // n_producers
    total = per * n_producers

    def run() -> float:
        q = queue_factory(capacity)
        barrier = threading.Barrier(n_producers + 1)

        def producer() -> None:
            barrier.wait()
            put = q.put
            for i in range(per):
                put(i)

        threads = [threading.Thread(target=producer, daemon=True)
                   for _ in range(n_producers)]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        taken = 0
        take = q.take
        while taken < total:
            if take() is None:
                time.sleep(0)   # yield; the queue's take is non-blocking
            else:
                taken += 1
        dt = time.perf_counter() - t0
        for t in threads:
            t.join(10)
        return total / dt

    return _best(run)


# ---------------------------------------------------------- delegation lanes
class _Counter(ActiveMonitor):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.count = 0

    @asynchronous()
    def tick(self):
        self.count += 1


def submit_complete(n_producers: int, per: int = 1_500) -> float:
    """Delegated round-trips/s: each worker submits ``per`` async ticks and
    evaluates every future (Rule 2 keeps at most one outstanding)."""

    def run() -> float:
        m = _Counter()
        try:
            barrier = threading.Barrier(n_producers + 1)
            def worker() -> None:
                barrier.wait()
                tick = m.tick
                futures = [tick() for _ in range(per)]
                for f in futures:
                    f.get(timeout=60)

            threads = [threading.Thread(target=worker, daemon=True)
                       for _ in range(n_producers)]
            for t in threads:
                t.start()
            barrier.wait()
            t0 = time.perf_counter()
            for t in threads:
                t.join(120)
            dt = time.perf_counter() - t0
            assert m.count == 0 or True
            return (n_producers * per) / dt
        finally:
            m.shutdown()

    return _best(run)


def submit_get_latency(iters: int = 4_000) -> float:
    """Single-thread submit→get round trip, ns/op."""

    def run() -> float:
        m = _Counter()
        try:
            tick = m.tick
            t0 = time.perf_counter_ns()
            for _ in range(iters):
                tick().get(timeout=60)
            dt = time.perf_counter_ns() - t0
            return dt / iters
        finally:
            m.shutdown()

    best = None
    for _ in range(3):
        v = run()
        best = v if best is None else min(best, v)
    return best


# ----------------------------------------------------------- multisynch lane
class _Cell(Monitor):
    def __init__(self):
        super().__init__()
        self.value = 0


def multisynch_cycle(n_monitors: int, iters: int = 12_000) -> float:
    """Acquire/release blocks/s over one repeatedly re-acquired monitor set."""
    mons = [_Cell() for _ in range(n_monitors)]

    def run() -> float:
        t0 = time.perf_counter()
        for _ in range(iters):
            with multisynch(*mons):
                pass
        return iters / (time.perf_counter() - t0)

    return _best(run)


def run_lanes() -> dict[str, float]:
    return {
        "queue_ops_1p": round(queue_ops(1), 1),
        "queue_ops_4p": round(queue_ops(4), 1),
        "queue_ops_8p": round(queue_ops(8), 1),
        "submit_complete_8p": round(submit_complete(8), 1),
        "submit_get_latency_ns": round(submit_get_latency(), 1),
        "multisynch_cycle_2": round(multisynch_cycle(2), 1),
        "multisynch_cycle_4": round(multisynch_cycle(4), 1),
    }


if __name__ == "__main__":
    import json

    print(json.dumps(run_lanes(), indent=2))
