"""Fig. 2.11 — round-robin runtime ratio vs out-of-monitor delay."""

from repro.bench.figures_ch2 import fig2_11_rr_ratio
from repro.problems.round_robin import run_round_robin


def test_fig2_11(benchmark, record):
    fig = fig2_11_rr_ratio()
    record("fig2_11_rr_ratio", fig.render())
    benchmark(lambda: run_round_robin("autosynch", 4, 20, delay=0.0005))
