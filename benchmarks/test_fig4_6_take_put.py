"""Fig. 4.6 — atomic take-and-put throughput across five variants."""

from repro.bench.figures_ch45 import fig4_6_take_and_put
from repro.problems.take_and_put import run_take_and_put


def test_fig4_6(benchmark, record):
    fig = fig4_6_take_and_put()
    record("fig4_6_take_put", fig.render())
    benchmark(lambda: run_take_and_put("cc", 2, 40))
