"""Fig. 2.6 — round-robin access runtime (equivalence-tag showcase)."""

from repro.bench.figures_ch2 import fig2_6_round_robin
from repro.problems.round_robin import run_round_robin


def test_fig2_6(benchmark, record):
    fig = fig2_6_round_robin()
    record("fig2_6_round_robin", fig.render())
    benchmark(lambda: run_round_robin("autosynch", 4, 30))
