"""Fig. 2.7 — ticket readers/writers runtime."""

from repro.bench.figures_ch2 import fig2_7_readers_writers
from repro.problems.readers_writers import run_readers_writers


def test_fig2_7(benchmark, record):
    fig = fig2_7_readers_writers()
    record("fig2_7_readers_writers", fig.render())
    benchmark(lambda: run_readers_writers("autosynch", 2, 10, 20))
