"""Fig. 3.4 — bounded FIFO queue throughput per capacity and variant."""

from repro.bench.figures_ch3 import fig3_4_bounded_queue
from repro.problems.bounded_buffer import run_active_queue


def test_fig3_4(benchmark, record):
    fig = fig3_4_bounded_queue()
    record("fig3_4_bq", fig.render())
    benchmark(lambda: run_active_queue("am", 2, 100, 16))
