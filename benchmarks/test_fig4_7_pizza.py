"""Fig. 4.7 — pizza store throughput across five variants."""

from repro.bench.figures_ch45 import fig4_7_pizza
from repro.problems.pizza_store import run_pizza_store


def test_fig4_7(benchmark, record):
    fig = fig4_7_pizza()
    record("fig4_7_pizza", fig.render())
    benchmark(lambda: run_pizza_store("cc", 2, 8))
