"""Asyncio frontend vs thread-per-client: capacity, footprint, loop health.

Head-to-head on the same delegation pipeline (``ActiveBoundedQueue``,
``mode="async"``): a *thread-per-client* frontend parks one OS thread per
logical client in ``take_until``/``LightFuture.get``, while the *coroutine*
frontend multiplexes every client onto one event loop through
``AsyncMonitorClient`` — waiterless waiters in the monitor's dependency
buckets, completions hopping back via ``call_soon_threadsafe``.

Both frontends run the identical wait-heavy workload: ``n`` logical
clients ramped in over ~1.5 s, each doing ``ROUNDS`` take+put round trips
with ~1.2 s of think time between rounds.  Offered load is therefore equal
by construction, and the record captures what each frontend *spends* to
sustain it: p95/p99 round latency, peak RSS growth, client spawn cost, and
(for the loop) a 20 ms-tick responsiveness probe whose drift would expose
any monitor-lock block on the loop thread.

The committed ``BENCH_async_frontend.json`` backs the acceptance claim on
the footprint leg: at >=2048 concurrent logical clients the coroutine
frontend sustains equal throughput at >=4x lower RSS growth (measured
~10-20x), with near-zero spawn cost and bounded loop drift.  Open-loop
parity lanes (``run_steady_load`` vs ``run_steady_load_async``, plus the
async burst lane) tie the ladder to the strict loadsim SLO machinery, and
the same 30 % ``p95 / budget`` ratio gate as the load-smoke suite guards
every lane against drift.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import threading
import time

import pytest

from benchmarks.conftest import skip_if_gil_mismatch, stamp_build
from repro.aio import AsyncMonitorClient
from repro.loadsim import run_burst_load_async, run_steady_load, \
    run_steady_load_async
from repro.problems.bounded_buffer import ActiveBoundedQueue
from repro.runtime.errors import WaitTimeoutError

_ROOT = pathlib.Path(__file__).resolve().parent.parent
ASYNC_FILE = _ROOT / "BENCH_async_frontend.json"

SEED = 11
RATIO_TOLERANCE = 0.30
NOISE_FLOOR_MS = 25.0

#: ladder workload: rounds per client, per-op deadline, warm items, ramp-in
ROUNDS = 3
OP_DEADLINE_S = 2.0
PREFILL = 256
RAMP_S = 1.5
#: p95 budget for a take+put round trip — generous against the 2 s op
#: deadline; measured p95 sits at 1-3 ms on both frontends
LADDER_BUDGET_MS = 250.0
#: the ladder itself — both frontends run every rung
CLIENT_RUNGS = (2048, 4096)
PROBE_TICK_S = 0.02


def _rss_mb() -> float:
    """Resident set of this process, from /proc (Linux CI runners)."""
    with open("/proc/self/status") as f:
        for line in f:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) / 1024.0
    return 0.0


def _pct(xs: list[float], q: float) -> float:
    if not xs:
        return float("nan")
    xs = sorted(xs)
    return xs[min(len(xs) - 1, int(q * len(xs)))]


def _think_s(idx: int) -> float:
    """Per-client think time, staggered by id so rounds never herd."""
    return 1.0 + (idx % 64) * 0.00625


def _new_queue(n: int) -> ActiveBoundedQueue:
    queue = ActiveBoundedQueue(max(512, n), mode="async")
    for i in range(PREFILL):
        queue.put(i).get(timeout=5)
    return queue


def _async_lane(n: int) -> dict:
    """n coroutine clients multiplexed on one loop + one AsyncMonitorClient."""
    base = _rss_mb()
    queue = _new_queue(n)
    peak = [base]
    spawn = [0.0]
    out: dict = {"kind": "coroutines", "clients": n, "rounds": ROUNDS}

    async def main() -> None:
        client = AsyncMonitorClient(queue)
        lats: list[float] = []
        timeouts = [0]
        drifts: list[float] = []
        stop = asyncio.Event()

        async def probe() -> None:
            expected = time.monotonic() + PROBE_TICK_S
            while not stop.is_set():
                await asyncio.sleep(max(0.0, expected - time.monotonic()))
                now = time.monotonic()
                drifts.append(now - expected)
                peak[0] = max(peak[0], _rss_mb())
                expected = now + PROBE_TICK_S

        async def one_client(idx: int) -> None:
            await asyncio.sleep(idx / n * RAMP_S)
            try:
                for _ in range(ROUNDS):
                    t0 = time.monotonic()
                    await asyncio.wait_for(
                        client.call("take_async"), OP_DEADLINE_S)
                    await asyncio.wait_for(
                        client.call("put", idx), OP_DEADLINE_S)
                    lats.append(time.monotonic() - t0)
                    await asyncio.sleep(_think_s(idx))
            except (WaitTimeoutError, asyncio.TimeoutError):
                timeouts[0] += 1

        probe_task = asyncio.ensure_future(probe())
        t_spawn = time.monotonic()
        tasks = [asyncio.ensure_future(one_client(i)) for i in range(n)]
        spawn[0] = time.monotonic() - t_spawn
        t0 = time.monotonic()
        await asyncio.gather(*tasks)
        elapsed = time.monotonic() - t0
        stop.set()
        probe_task.cancel()
        out.update(
            completed=len(lats),
            timeouts=timeouts[0],
            p95_ms=round(_pct(lats, 0.95) * 1e3, 2),
            p99_ms=round(_pct(lats, 0.99) * 1e3, 2),
            elapsed_s=round(elapsed, 3),
            throughput_ops=round(len(lats) * 2 / elapsed, 1),
            loop_probe={
                "samples": len(drifts),
                "max_drift_ms": round(max(drifts) * 1e3, 1),
                "p95_drift_ms": round(_pct(drifts, 0.95) * 1e3, 1),
            },
        )

    try:
        asyncio.run(main())
    finally:
        queue.shutdown()
    out["spawn_s"] = round(spawn[0], 3)
    out["rss_delta_mb"] = round(peak[0] - base, 1)
    out["p95_budget_ms"] = LADDER_BUDGET_MS
    out["slo_ratio"] = round(out["p95_ms"] / LADDER_BUDGET_MS, 4)
    return out


def _thread_lane(n: int) -> dict:
    """n OS threads, each a blocking take_until + put().get() client."""
    base = _rss_mb()
    queue = _new_queue(n)
    lats: list[float] = []
    timeouts = [0]
    peak = [base]
    stop = threading.Event()
    lock = threading.Lock()

    def sampler() -> None:
        while not stop.is_set():
            peak[0] = max(peak[0], _rss_mb())
            time.sleep(PROBE_TICK_S)

    def one_client(idx: int) -> None:
        time.sleep(idx / n * RAMP_S)
        mine: list[float] = []
        try:
            for _ in range(ROUNDS):
                t0 = time.monotonic()
                queue.take_until(deadline=time.monotonic() + OP_DEADLINE_S)
                queue.put(idx).get(timeout=OP_DEADLINE_S)
                mine.append(time.monotonic() - t0)
                time.sleep(_think_s(idx))
        except WaitTimeoutError:
            with lock:
                timeouts[0] += 1
        with lock:
            lats.extend(mine)

    smp = threading.Thread(target=sampler, daemon=True)
    smp.start()
    t_spawn = time.monotonic()
    threads = [threading.Thread(target=one_client, args=(i,), daemon=True)
               for i in range(n)]
    for t in threads:
        t.start()
    spawn_s = time.monotonic() - t_spawn
    t0 = time.monotonic()
    for t in threads:
        t.join(60)
    elapsed = time.monotonic() - t0
    stop.set()
    smp.join(1)
    queue.shutdown()
    p95 = round(_pct(lats, 0.95) * 1e3, 2)
    return {
        "kind": "threads",
        "clients": n,
        "rounds": ROUNDS,
        "completed": len(lats),
        "timeouts": timeouts[0],
        "p95_ms": p95,
        "p99_ms": round(_pct(lats, 0.99) * 1e3, 2),
        "elapsed_s": round(elapsed, 3),
        "throughput_ops": round(len(lats) * 2 / elapsed, 1),
        "spawn_s": round(spawn_s, 3),
        "rss_delta_mb": round(peak[0] - base, 1),
        "p95_budget_ms": LADDER_BUDGET_MS,
        "slo_ratio": round(p95 / LADDER_BUDGET_MS, 4),
    }


def _report_lane(report, budget_ms: float) -> dict:
    """A loadsim parity lane, keyed the same way as the load-smoke suite."""
    body = report.to_dict()
    p95 = body["latency_ms"]["p95"]
    return {
        **body,
        "gate_group": "all",
        "p95_budget_ms": budget_ms,
        "slo_ratio": round(p95 / budget_ms, 4),
    }


# ------------------------------------------------------------------ suite


def run_frontend_suite() -> dict:
    lanes = {}
    # the coroutine rungs run first: their RSS delta is measured against a
    # clean heap, before 4k thread stacks have paged anything in
    for n in CLIENT_RUNGS:
        lanes[f"coroutines_{n}"] = _async_lane(n)
    for n in CLIENT_RUNGS:
        lanes[f"threads_{n}"] = _thread_lane(n)
    # open-loop parity: the identical steady workload through both
    # frontends, under the strict steady SLO; plus the async burst lane
    deadline = 0.5
    budget = 0.8 * deadline * 1e3
    report = run_steady_load("buffer", rate=60.0, duration=3.0,
                             seed=SEED, deadline=deadline)
    lanes["steady_threads_buffer"] = _report_lane(report, budget)
    report = run_steady_load_async("buffer", rate=60.0, duration=3.0,
                                   seed=SEED, deadline=deadline)
    lanes["steady_coroutines_buffer"] = _report_lane(report, budget)
    report = run_burst_load_async("buffer", duration=3.0, seed=SEED,
                                  deadline=0.3)
    lanes["burst_coroutines_buffer"] = _report_lane(report, 0.3 * 1e3)
    return stamp_build({"unit": "ms", "lanes": lanes})


@pytest.fixture(scope="module")
def frontend_results():
    committed = None
    if ASYNC_FILE.exists():
        committed = json.loads(ASYNC_FILE.read_text())
    fresh = run_frontend_suite()
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        ASYNC_FILE.write_text(json.dumps(fresh, indent=2) + "\n")
    return {"committed": committed, "fresh": fresh}


def _summary(results: dict) -> dict:
    out = {}
    for name, lane in results["fresh"]["lanes"].items():
        if "kind" in lane:   # ladder lane
            out[name] = {k: lane[k] for k in (
                "p95_ms", "p99_ms", "completed", "timeouts",
                "throughput_ops", "spawn_s", "rss_delta_mb", "slo_ratio")}
            if "loop_probe" in lane:
                out[name]["max_drift_ms"] = lane["loop_probe"]["max_drift_ms"]
        else:                # loadsim parity lane
            out[name] = {
                "p95_ms": lane["latency_ms"]["p95"],
                "p99_ms": lane["latency_ms"]["p99"],
                "throughput_rps": lane["throughput_rps"],
                "totals": lane["totals"],
                "slo_ratio": lane["slo_ratio"],
            }
    return out


def test_emit_frontend_report(frontend_results, capsys):
    with capsys.disabled():
        print("\n" + json.dumps(_summary(frontend_results), indent=2))


# --------------------------------------------------------------- acceptance


def test_coroutine_frontend_sustains_2k_clients(frontend_results):
    """>=2048 logical clients on one loop, every round completed within
    its op deadline, p95 inside the ladder budget."""
    for n in CLIENT_RUNGS:
        lane = frontend_results["fresh"]["lanes"][f"coroutines_{n}"]
        assert lane["timeouts"] == 0, (n, lane["timeouts"])
        assert lane["completed"] == n * ROUNDS, (n, lane["completed"])
        assert lane["p95_ms"] <= LADDER_BUDGET_MS, (n, lane["p95_ms"])


def test_equal_throughput_at_4x_lower_rss(frontend_results):
    """The acceptance leg: at every rung the coroutine frontend matches the
    thread frontend's throughput (same offered load, both sustained) while
    growing RSS by >=4x less.  Measured headroom is ~10-20x; the 4x floor
    absorbs allocator noise on the small coroutine-side delta."""
    lanes = frontend_results["fresh"]["lanes"]
    for n in CLIENT_RUNGS:
        aio, thr = lanes[f"coroutines_{n}"], lanes[f"threads_{n}"]
        assert aio["throughput_ops"] >= 0.90 * thr["throughput_ops"], (
            n, aio["throughput_ops"], thr["throughput_ops"])
        aio_rss = max(aio["rss_delta_mb"], 1.0)
        assert thr["rss_delta_mb"] >= 4.0 * aio_rss, (
            n, thr["rss_delta_mb"], aio["rss_delta_mb"])
        # spawning a coroutine is object construction; spawning a thread
        # is a syscall — the ramp cost gap is part of the capacity story
        assert aio["spawn_s"] <= thr["spawn_s"], (
            n, aio["spawn_s"], thr["spawn_s"])


def test_loop_thread_never_blocks(frontend_results):
    """The 20 ms probe keeps ticking through every rung: a loop thread that
    blocked on a monitor lock (or in LightFuture.get) would show a drift
    spike on the order of the 2 s op deadline, three decades above this
    bound."""
    for n in CLIENT_RUNGS:
        probe = frontend_results["fresh"]["lanes"][f"coroutines_{n}"][
            "loop_probe"]
        assert probe["samples"] > 50, (n, probe)
        assert probe["max_drift_ms"] <= 250.0, (n, probe)
        assert probe["p95_drift_ms"] <= 50.0, (n, probe)


def test_parity_lanes_fully_accounted(frontend_results):
    """Both frontends ran the same strict steady SLO; re-assert the
    accounting identity on the serialized lanes, and that the async lane
    carries its loop probe."""
    lanes = frontend_results["fresh"]["lanes"]
    for name in ("steady_threads_buffer", "steady_coroutines_buffer",
                 "burst_coroutines_buffer"):
        lane = lanes[name]
        assert lane["in_flight"] == 0, name
        assert lane["offered"] == sum(lane["totals"].values()), name
        assert lane["totals"]["completed"] > 0, name
    for name in ("steady_coroutines_buffer", "burst_coroutines_buffer"):
        probe = lanes[name]["extra"]["loop_probe"]
        assert probe["samples"] > 0, name


# -------------------------------------------------------------- ratio gate


def test_frontend_ratio_gate_vs_committed(frontend_results):
    """Fresh p95/budget may not exceed the committed ratio by >30%, unless
    the fresh p95 is still under the absolute noise floor."""
    committed = frontend_results["committed"]
    if committed is None:
        pytest.skip("no committed record to gate against")
    skip_if_gil_mismatch(committed)
    for name, lane in frontend_results["fresh"]["lanes"].items():
        base = committed["lanes"].get(name)
        if base is None:
            continue
        allowed = max(
            base["slo_ratio"] * (1.0 + RATIO_TOLERANCE),
            NOISE_FLOOR_MS / lane["p95_budget_ms"],
        )
        assert lane["slo_ratio"] <= allowed, (
            f"{name}: fresh p95 spends {lane['slo_ratio']:.0%} of its "
            f"{lane['p95_budget_ms']:.0f}ms budget, >30% above the "
            f"committed {base['slo_ratio']:.0%}")


def test_committed_record_covers_acceptance():
    """The committed record itself documents the acceptance claim: both
    ladders at every rung, zero coroutine timeouts, >=4x RSS headroom,
    bounded loop drift, and the build block."""
    if not ASYNC_FILE.exists():
        pytest.skip("committed record not present")
    record = json.loads(ASYNC_FILE.read_text())
    assert "build" in record and "python" in record["build"]
    lanes = record["lanes"]
    for n in CLIENT_RUNGS:
        aio, thr = lanes[f"coroutines_{n}"], lanes[f"threads_{n}"]
        assert aio["timeouts"] == 0 and thr["timeouts"] == 0, n
        assert aio["completed"] == thr["completed"] == n * ROUNDS, n
        assert thr["rss_delta_mb"] >= 4.0 * max(aio["rss_delta_mb"], 1.0), n
        assert aio["loop_probe"]["max_drift_ms"] <= 250.0, n
    for name in ("steady_threads_buffer", "steady_coroutines_buffer",
                 "burst_coroutines_buffer"):
        assert lanes[name]["in_flight"] == 0, name
