"""Fig. 2.5 — H2O barrier runtime across signaling mechanisms."""

from repro.bench.figures_ch2 import fig2_5_h2o
from repro.problems.h2o import run_h2o


def test_fig2_5(benchmark, record):
    fig = fig2_5_h2o()
    record("fig2_5_h2o", fig.render())
    benchmark(lambda: run_h2o("autosynch", 4, 40))
