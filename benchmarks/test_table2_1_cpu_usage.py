"""Table 2.1 — CPU-usage breakdown for the round-robin pattern."""

from repro.bench.figures_ch2 import table2_1_cpu_usage
from repro.problems.round_robin import run_round_robin


def test_table2_1(benchmark, record):
    text = table2_1_cpu_usage()
    record("table2_1_cpu_usage", text)
    benchmark(lambda: run_round_robin("autosynch", 8, 30))
