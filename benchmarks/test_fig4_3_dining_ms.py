"""Fig. 4.3 — dining philosophers throughput: FL / TM / MS."""

from repro.bench.figures_ch45 import fig4_3_dining
from repro.problems.dining import run_dining_multi


def test_fig4_3(benchmark, record):
    fig = fig4_3_dining()
    record("fig4_3_dining_ms", fig.render())
    # paper shape: TM is the clear loser under saturation
    assert fig.rows["tm"][-1] <= max(fig.rows["fl"][-1], fig.rows["ms"][-1]) * 5
    benchmark(lambda: run_dining_multi("ms", 5, 50))
