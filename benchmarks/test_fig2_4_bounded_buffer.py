"""Fig. 2.4 — bounded-buffer runtime across the four signaling mechanisms."""

from repro.bench.figures_ch2 import fig2_4_bounded_buffer
from repro.problems.bounded_buffer import run_bounded_buffer


def test_fig2_4(benchmark, record):
    fig = fig2_4_bounded_buffer()
    record("fig2_4_bounded_buffer", fig.render())
    # autosynch must stay within an order of magnitude of explicit (paper:
    # "almost as efficient"); baseline is the known-slow strawman.
    explicit = fig.rows["explicit"]
    autosynch = fig.rows["autosynch"]
    assert autosynch[0] < max(10 * explicit[0], 1.0)
    benchmark(lambda: run_bounded_buffer("autosynch", 2, 2, 50, capacity=8))
