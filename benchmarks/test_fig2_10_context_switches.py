"""Fig. 2.10 — wakeup (context-switch proxy) counts for Fig. 2.9's workload."""

from repro.bench.figures_ch2 import fig2_10_context_switches
from repro.problems.param_bounded_buffer import run_param_bounded_buffer


def test_fig2_10(benchmark, record):
    fig = fig2_10_context_switches()
    record("fig2_10_context_switches", fig.render())
    # The paper's headline gap (2.7M vs 5.4K wakeups) emerges at hundreds of
    # consumers; at quick scale (<=8) the two are statistically tied, so this
    # only guards against autosynch *losing* by more than noise.  The
    # definitive scaling assertion lives in test_sim_scaling (simulated
    # Fig. 2.10 at 64+ consumers).
    last = -1
    assert fig.rows["autosynch"][last] <= 2 * fig.rows["explicit"][last]
    benchmark(lambda: run_param_bounded_buffer("autosynch", 4, 15))
