"""Fig. 3.5 — sorted linked list + round robin throughput."""

from repro.bench.figures_ch3 import fig3_5_sll_rr
from repro.problems.sorted_list import run_sorted_list


def test_fig3_5(benchmark, record):
    fig = fig3_5_sll_rr()
    record("fig3_5_sll_rr", fig.render())
    benchmark(lambda: run_sorted_list("am", "mixed", 2, 40))
