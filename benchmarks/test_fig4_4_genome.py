"""Fig. 4.4 — genome+ runtime: FL / TM / MS."""

from repro.bench.figures_ch45 import fig4_4_genome
from repro.problems.genome import run_genome


def test_fig4_4(benchmark, record):
    fig = fig4_4_genome()
    record("fig4_4_genome", fig.render())
    benchmark(lambda: run_genome("ms", 2))
