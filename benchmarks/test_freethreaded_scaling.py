"""Free-threaded lane: real multicore threads-vs-speedup curves.

Every scaling figure in the repo so far comes from the discrete-event
simulator (:mod:`repro.sim`) because CPython's GIL serializes real threads.
With the atomics port (:mod:`repro.runtime.atomics`) the monitor runtime is
correct on free-threaded CPython (PEP 703, 3.13t/3.14t), where the curves
can finally be measured on real cores.  This module drives four of the
paper's workloads as wall-clock threads-vs-speedup curves with *fixed total
work* per workload (so speedup at ``n`` threads is simply
``elapsed[1] / elapsed[n]``):

* Fig 2.4  — bounded buffer, automatic-signal monitor, ``n`` producer +
  ``n`` consumer pairs, out-of-monitor spin delay per operation;
* Fig 2.7  — readers/writers at the paper's 5:1 ratio (``5n`` readers,
  ``n`` writers);
* Fig 3.3  — PSSSP over a road network, ``lk`` variant (plain worker
  threads on a lock-based priority queue);
* Fig 4.3  — dining philosophers over ``multisynch`` fork monitors
  (``2n`` philosophers, fixed total meals).

The report goes to ``BENCH_freethreaded.json`` at the repo root (set
``REPRO_WRITE_BENCH=1``) with the interpreter build block stamped in — the
committed record on a GIL build documents the harness and the flat curves
the GIL forces; the free-threaded CI lane regenerates it with
``gil_enabled: false`` and real scaling.

The acceptance assertion (>1.5× speedup at 4 threads on ≥2 of the 4
workloads) runs only where it is physically meaningful: a free-threaded
interpreter on ≥4 cores.  On GIL builds (or small hosts) the harness still
runs end to end — completion, operation counts, and cross-lane result
agreement are asserted everywhere.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from benchmarks.conftest import BUILD, stamp_build
from repro.problems.bounded_buffer import run_bounded_buffer
from repro.problems.dining import run_dining_multi
from repro.problems.graphs import road_network
from repro.problems.psssp import run_psssp
from repro.problems.readers_writers import run_readers_writers

BENCH_FILE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_freethreaded.json"
)

#: thread-scaling lanes (the unit the workload multiplies: thread pairs for
#: the bounded buffer, writer count for readers/writers, worker count for
#: PSSSP, half the table size for dining)
LANES = (1, 2, 4)

#: out-of-monitor spin per operation — the paper's "delay time", the
#: parallelizable compute that real cores can actually overlap
DELAY = 0.001

#: fixed total volumes, divisible by every lane width
BB_TOTAL_ITEMS = 240          # per-producer items = total / n
RW_TOTAL_ROUNDS = 1200        # per-thread rounds = total / (6n)
DINING_TOTAL_MEALS = 240      # per-philosopher meals = total / (2n)
PSSSP_SIDE = 12               # road_network(12): 144 nodes, ~4 edges/node

#: acceptance floor (ISSUE 8): at 4 threads, on a free-threaded build with
#: >=4 cores, at least MIN_SCALING_WORKLOADS of the 4 workloads must show
#: this speedup over their own 1-thread lane
SPEEDUP_FLOOR = 1.5
MIN_SCALING_WORKLOADS = 2


def _bounded_buffer(n: int):
    return run_bounded_buffer(
        "autosynch", n, n, BB_TOTAL_ITEMS // n, capacity=16, delay=DELAY
    )


def _readers_writers(n: int):
    return run_readers_writers(
        "autosynch", n, 5 * n, RW_TOTAL_ROUNDS // (6 * n), delay=DELAY
    )


def _psssp(n: int):
    graph = road_network(PSSSP_SIDE, seed=1)
    return run_psssp(graph, "lk", n)


def _dining(n: int):
    return run_dining_multi(
        "ms", 2 * n, DINING_TOTAL_MEALS // (2 * n), think=DELAY
    )


WORKLOADS = {
    "fig2_4_bounded_buffer": _bounded_buffer,
    "fig2_7_readers_writers": _readers_writers,
    "fig3_3_psssp_lk": _psssp,
    "fig4_3_dining_multisynch": _dining,
}


def run_curves() -> dict:
    lanes: dict[str, dict[str, dict[str, float]]] = {}
    extras: dict[str, dict[int, dict]] = {}
    for name, driver in WORKLOADS.items():
        lanes[name] = {}
        extras[name] = {}
        for n in LANES:
            result = driver(n)
            lanes[name][str(n)] = {
                "elapsed_s": round(result.elapsed, 4),
                "operations": result.operations,
            }
            extras[name][n] = result.extra
    speedup = {
        name: {
            str(n): round(
                curve["1"]["elapsed_s"] / max(curve[str(n)]["elapsed_s"], 1e-9),
                2,
            )
            for n in LANES
        }
        for name, curve in lanes.items()
    }
    report = stamp_build({
        "unit": "elapsed seconds per lane; speedup vs the 1-thread lane",
        "thread_lanes": list(LANES),
        "fixed_work": {
            "fig2_4_bounded_buffer": f"{BB_TOTAL_ITEMS} items, delay {DELAY}s",
            "fig2_7_readers_writers": f"{RW_TOTAL_ROUNDS} rounds, 5:1 ratio",
            "fig3_3_psssp_lk": f"road_network({PSSSP_SIDE}) seed 1",
            "fig4_3_dining_multisynch": f"{DINING_TOTAL_MEALS} meals",
        },
        "lanes": lanes,
        "speedup": speedup,
    })
    return {"report": report, "extras": extras}


@pytest.fixture(scope="module")
def results():
    committed = None
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())
    run = run_curves()
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        BENCH_FILE.write_text(json.dumps(run["report"], indent=2) + "\n")
    return {"committed": committed, "fresh": run["report"],
            "extras": run["extras"]}


def test_emit_report(results, capsys):
    with capsys.disabled():
        print("\n" + json.dumps(results["fresh"], indent=2))


def test_every_lane_completes_its_fixed_work(results):
    """Same operation count in every lane of a workload — the curves divide
    a fixed volume, they don't shrink it."""
    for name, curve in results["fresh"]["lanes"].items():
        ops = {curve[str(n)]["operations"] for n in LANES}
        assert len(ops) == 1 and ops.pop() > 0, f"{name}: uneven lanes {curve}"


def test_psssp_distances_agree_across_lanes(results):
    """Correctness under scaling: the 1- and 4-thread PSSSP runs must
    compute identical shortest-path distances."""
    extras = results["extras"]["fig3_3_psssp_lk"]
    assert extras[1]["distances"] == extras[LANES[-1]]["distances"]


def test_multicore_speedup_on_free_threaded_build(results):
    """ISSUE 8 acceptance: >1.5× at 4 threads on ≥2 of 4 workloads.

    Only measurable without the GIL on ≥4 cores; elsewhere the harness
    documents the flat curve instead of asserting a physically impossible
    speedup.
    """
    if BUILD["gil_enabled"]:
        pytest.skip("GIL build: real multicore scaling is not measurable")
    if BUILD["cpu_count"] < 4:
        pytest.skip(f"only {BUILD['cpu_count']} CPU(s): need >=4 for the "
                    f"4-thread lane to scale")
    speedups = results["fresh"]["speedup"]
    top = str(LANES[-1])
    scaling = {name: s[top] for name, s in speedups.items()
               if s[top] > SPEEDUP_FLOOR}
    assert len(scaling) >= MIN_SCALING_WORKLOADS, (
        f"only {len(scaling)}/{len(WORKLOADS)} workloads exceeded "
        f"{SPEEDUP_FLOOR}x at {top} threads: "
        f"{ {n: s[top] for n, s in speedups.items()} }"
    )


def test_committed_no_gil_record_meets_acceptance(results):
    """Static self-check: once a free-threaded run commits its record, the
    record must keep showing the accepted scaling (it cannot silently rot
    into a GIL-flat curve while claiming gil_enabled: false)."""
    committed = results["committed"]
    if committed is None:
        pytest.skip("no committed BENCH_freethreaded.json yet")
    build = committed.get("build", {})
    if build.get("gil_enabled", True):
        pytest.skip("committed record is from a GIL build (documents the "
                    "harness, not the scaling claim)")
    top = str(max(committed["thread_lanes"]))
    scaling = [name for name, s in committed["speedup"].items()
               if s[top] > SPEEDUP_FLOOR]
    assert len(scaling) >= MIN_SCALING_WORKLOADS, (
        f"committed no-GIL record shows only {len(scaling)} workload(s) "
        f"above {SPEEDUP_FLOOR}x at {top} threads"
    )
