"""Fig. 3.3 — PSSSP throughput over road-network and R-MAT graphs."""

from repro.bench.figures_ch3 import fig3_3_psssp
from repro.problems.graphs import road_network
from repro.problems.psssp import run_psssp


def test_fig3_3(benchmark, record):
    fig = fig3_3_psssp()
    record("fig3_3_psssp", fig.render())
    graph = road_network(8, seed=1)
    benchmark(lambda: run_psssp(graph, "am", 2))
