"""Paper-scale scaling shapes on the deterministic multicore simulator."""

from repro.bench.figures_sim import (
    sim_fig2_4_bounded_buffer,
    sim_fig2_6_round_robin,
    sim_fig2_9_param_bb,
    sim_fig2_10_context_switches,
)
from repro.sim import sim_round_robin


def test_sim_fig2_4(benchmark, record):
    fig = sim_fig2_4_bounded_buffer()
    record("sim_fig2_4", fig.render())
    # paper shape: the broadcast baseline is the clear loser at scale
    assert fig.rows["baseline"][-1] > fig.rows["autosynch"][-1]
    benchmark(lambda: sim_round_robin("autosynch", 16, 10))


def test_sim_fig2_6(benchmark, record):
    fig = sim_fig2_6_round_robin()
    record("sim_fig2_6", fig.render())
    # paper shape: autosynch_t degrades with thread count; tags bound it
    assert fig.rows["autosynch_t"][-1] > fig.rows["autosynch"][-1]
    # explicit (hand-tuned per-thread CVs) is the optimum
    assert fig.rows["explicit"][-1] <= fig.rows["autosynch"][-1]
    benchmark(lambda: sim_round_robin("autosynch_t", 16, 10))


def test_sim_fig2_9_and_2_10(benchmark, record):
    fig9 = sim_fig2_9_param_bb()
    record("sim_fig2_9", fig9.render())
    fig10 = sim_fig2_10_context_switches()
    record("sim_fig2_10", fig10.render())
    # paper shape: signalAll's context switches dwarf autosynch's
    assert fig10.rows["explicit"][-1] > 2 * fig10.rows["autosynch"][-1]
    assert fig9.rows["explicit"][-1] > fig9.rows["autosynch"][-1]
    benchmark(lambda: sim_fig2_9_param_bb_cell())


def sim_fig2_9_param_bb_cell():
    from repro.sim import sim_param_bounded_buffer

    return sim_param_bounded_buffer("autosynch", 16, 8)


def test_sim_fig3_4(benchmark, record):
    from repro.bench.figures_sim import sim_fig3_4_active_queue

    fig = sim_fig3_4_active_queue()
    record("sim_fig3_4", fig.render())
    # recovered chapter-3 headline: delegation overtakes locking at scale
    assert fig.rows["cap4/am"][-1] < fig.rows["cap4/lk"][-1]
    from repro.sim import sim_active_queue

    benchmark(lambda: sim_active_queue("am", 16, 10, capacity=8))


def test_sim_fig4_7(benchmark, record):
    from repro.bench.figures_sim import sim_fig4_7_pizza

    fig = sim_fig4_7_pizza()
    record("sim_fig4_7", fig.render())
    # recovered chapter-4 headline: critical-clause beats the coarse lock
    assert fig.rows["cc"][-1] < fig.rows["gl"][-1]
    from repro.sim import sim_pizza_store

    benchmark(lambda: sim_pizza_store("cc", 8, 5))


def test_sim_fig5_2(benchmark, record):
    from repro.bench.figures_sim import sim_fig5_2_multicast

    fig = sim_fig5_2_multicast()
    record("sim_fig5_2", fig.render())
    # recovered chapter-5 headline: composition beats the coarse lock
    assert fig.rows["so"][-1] < fig.rows["gl"][-1]
    from repro.sim import sim_multicast

    benchmark(lambda: sim_multicast("so", 8, 8))


def test_sim_table2_1(benchmark, record):
    from repro.bench.figures_sim import sim_table2_1

    text = sim_table2_1()
    record("sim_table2_1", text)
    from repro.sim import sim_round_robin

    # paper claim at scale: tags collapse relay predicate-evaluation time
    scan = sim_round_robin("autosynch_t", 64, 8)
    tags = sim_round_robin("autosynch", 64, 8)
    assert tags["time_by_category"].get("eval", 0) < scan["time_by_category"]["eval"] / 5
    benchmark(lambda: sim_round_robin("autosynch", 32, 8))


def test_sim_fig2_5_2_7_2_8(benchmark, record):
    from repro.bench.figures_sim import (
        sim_fig2_5_h2o,
        sim_fig2_7_readers_writers,
        sim_fig2_8_dining,
    )

    h2o = sim_fig2_5_h2o()
    record("sim_fig2_5", h2o.render())
    rw = sim_fig2_7_readers_writers()
    record("sim_fig2_7", rw.render())
    dining = sim_fig2_8_dining()
    record("sim_fig2_8", dining.render())
    # paper shapes: baseline is the H2O loser; dining gap stays bounded
    assert h2o.rows["baseline"][-1] >= h2o.rows["autosynch"][-1]
    assert dining.rows["autosynch"][-1] < 10 * dining.rows["explicit"][-1]
    from repro.sim import sim_h2o

    benchmark(lambda: sim_h2o("autosynch", 16, 15))


def test_sim_fig4_6(benchmark, record):
    from repro.bench.figures_sim import sim_fig4_6_take_and_put

    fig = sim_fig4_6_take_and_put()
    record("sim_fig4_6", fig.render())
    # recovered chapter-4 contrast: fine-grained moves beat the global lock
    assert fig.rows["fg"][-1] < fig.rows["gl"][-1]
    from repro.sim import sim_take_and_put

    benchmark(lambda: sim_take_and_put("fg", 16, 10))
