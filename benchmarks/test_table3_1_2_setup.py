"""Tables 3.1/3.2 — the evaluated problem inventory."""

from repro.bench.figures_ch3 import tables_3_1_and_3_2
from repro.problems.registry import PROBLEMS


def test_tables_3_1_3_2(benchmark, record):
    text = tables_3_1_and_3_2()
    record("table3_1_2_setup", text)
    assert set(PROBLEMS) == {"PSSSP", "BQ", "SLL", "RR"}
    benchmark(lambda: tables_3_1_and_3_2())
