"""Fig. 2.9 — parameterized bounded buffer (the signalAll stressor)."""

from repro.bench.figures_ch2 import fig2_9_param_bounded_buffer
from repro.problems.param_bounded_buffer import run_param_bounded_buffer


def test_fig2_9(benchmark, record):
    fig = fig2_9_param_bounded_buffer()
    record("fig2_9_param_bb", fig.render())
    benchmark(lambda: run_param_bounded_buffer("autosynch", 4, 15))
