"""Microbenchmarks for the monitor hot path, with a ratio-based perf gate.

Times the fast paths the predicate compiler (:mod:`repro.core.compiled`)
targets, in both evaluation modes:

* ``interpreted`` — ``Config.compile_predicates = False``: the tree-walking
  interpreter (the pre-compiler behavior);
* ``compiled`` — the default: code-generated flat closures.

Results are written to ``BENCH_core_hotpath.json`` at the repo root (set
``REPRO_WRITE_BENCH=1``; the committed copy records the numbers backing
docs/performance.md, including the pre-PR ``seed`` column captured before
the compiler landed).

The CI perf-smoke job re-runs these benches and gates on *speedup ratios*
(compiled vs interpreted on the same host, same process), not absolute
times — absolute ns/op vary wildly across runners, but the ratio is a
property of the code.  The gate fails when a measured ratio falls more than
30% below the committed one.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from benchmarks.conftest import skip_if_gil_mismatch, stamp_build
from repro.core.expressions import S
from repro.core.monitor import Monitor
from repro.core.predicates import Predicate
from repro.core.waiter import Waiter
from repro.runtime.config import get_config

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_core_hotpath.json"

#: pre-PR numbers (tree-walking interpreter, per-call config reads, pooled
#: CVs only, O(n) heap live-count), measured on the same host that produced
#: the committed interpreted/compiled columns — the "before" of the record
SEED_NS_PER_OP = {
    "enter_exit": 1182.2,
    "wait_until_true_prebuilt": 484.9,
    "wait_until_true_dsl": 8968.7,
    "relay_search_1": 4846.3,
    "relay_search_16": 38055.1,
    "relay_search_256": 642174.6,
    "tag_probe_256": 2233.2,
}

#: lanes the CI gate enforces (the ISSUE's ≥2× acceptance criteria), and the
#: regression tolerance on their compiled-vs-interpreted speedup ratio
GATED_LANES = ("wait_until_true_prebuilt", "relay_search_256")
RATIO_TOLERANCE = 0.30

#: dependency-tracked relay record (docs/performance.md "Reading
#: BENCH_relay_dirty.json"): sparse-write lanes over an untagged pool
DIRTY_BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_relay_dirty.json"
#: the committed compiled ``relay_search_256`` number at the time the
#: dependency-tracking subsystem landed — the dense regression reference
DENSE_SEED_NS = 206593.7
SPARSE_MIN_SPEEDUP = 5.0
DENSE_MAX_RATIO_VS_SEED = 1.10


def best_ns_per_op(fn, number: int, repeats: int = 5) -> float:
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        fn(number)
        dt = time.perf_counter_ns() - t0
        if best is None or dt < best:
            best = dt
    return best / number


class Probe(Monitor):
    def __init__(self):
        super().__init__()
        self.count = 0
        self.gate = 0
        self.state = -1
        self.capacity = 1 << 30

    def nop(self):
        pass

    def wait_ready(self, pred):
        self.wait_until(pred)

    def wait_ready_many(self, pred, n):
        for _ in range(n):
            self.wait_until(pred)


def bench_enter_exit() -> float:
    m = Probe()

    def run(n):
        nop = m.nop
        for _ in range(n):
            nop()

    return best_ns_per_op(run, 20000)


def bench_wait_until_true_prebuilt() -> float:
    """The dominant case: a reused predicate that is already true."""
    m = Probe()
    pred = Predicate(S.count >= 0)

    def run(n):
        m.wait_ready_many(pred, n)

    return best_ns_per_op(run, 20000)


def bench_wait_until_true_dsl() -> float:
    """Fresh DSL tree per call (tree build + DNF dominate; must not regress)."""
    m = Probe()

    def run(n):
        for _ in range(n):
            m.wait_ready(S.count >= 0)

    return best_ns_per_op(run, 5000)


def _manager_with_waiters(n_waiters: int, shape: str):
    m = Probe()
    mgr = m._cond_mgr
    for i in range(n_waiters):
        if shape == "threshold":
            # distinct satisfied thresholds, full predicate false: the relay
            # walks every candidate and evaluates every closure
            pred = Predicate((S.count >= -(i + 1)) & (S.gate > 0))
        else:
            pred = Predicate(S.state == 1000 + i)
        mgr._register(Waiter(pred, m._lock))
    return m, mgr


def bench_relay_search(n_waiters: int) -> float:
    m, mgr = _manager_with_waiters(n_waiters, "threshold")
    number = max(200, 20000 // n_waiters)

    def run(n):
        with m._lock:
            relay = mgr.relay_signal
            for _ in range(n):
                relay()

    return best_ns_per_op(run, number)


def bench_tag_probe(n_waiters: int) -> float:
    """Equivalence probe: O(1) regardless of waiter count."""
    m, mgr = _manager_with_waiters(n_waiters, "equivalence")

    def run(n):
        with m._lock:
            relay = mgr.relay_signal
            for _ in range(n):
                relay()

    return best_ns_per_op(run, 20000)


def _sparse_pool(n_waiters: int):
    """256 untagged (NONE-tag) waiters, each reading one distinct variable.

    ``S.v{i} != 0`` is a disequality — Algorithm 1 gives it no tag, so the
    pool lands in the condition manager's untagged lanes, each waiter with
    read set ``{v{i}}``.  Every variable is 0, so every predicate is false
    and each relay walks whatever the filter lets through.
    """
    m = Probe()
    mgr = m._cond_mgr
    names = [f"v{i}" for i in range(n_waiters)]
    for name in names:
        setattr(m, name, 0)
    m._dirty.clear()
    for name in names:
        pred = Predicate(getattr(S, name) != 0)
        mgr._register(Waiter(pred, m._lock))
    return m, mgr, names


def bench_relay_search_sparse(n_waiters: int, number: int) -> float:
    """One write per exit, touching 1 of ``n_waiters`` read variables.

    With dependency tracking the relay re-evaluates ~1 waiter per exit
    (the one whose read set intersects the dirty set); with
    ``track_dependencies = False`` it falls back to scanning all of them.
    """
    m, mgr, names = _sparse_pool(n_waiters)

    def run(n):
        with m._lock:
            relay = mgr.relay_signal
            j = 0
            for _ in range(n):
                setattr(m, names[j], 0)  # dirty one variable; still false
                relay()
                j += 1
                if j == n_waiters:
                    j = 0

    return best_ns_per_op(run, number)


def run_dirty_suite() -> tuple[dict[str, float], float]:
    cfg = get_config()
    prior_track = cfg.track_dependencies
    prior_compile = cfg.compile_predicates
    try:
        cfg.compile_predicates = True
        cfg.track_dependencies = True
        tracked = round(bench_relay_search_sparse(256, number=5000), 1)
        dense = round(bench_relay_search(256), 1)
        cfg.track_dependencies = False
        untracked = round(bench_relay_search_sparse(256, number=200), 1)
    finally:
        cfg.track_dependencies = prior_track
        cfg.compile_predicates = prior_compile
    lanes = {
        "relay_search_256_sparse": tracked,
        "relay_search_256_sparse_untracked": untracked,
    }
    return lanes, dense


BENCHES = {
    "enter_exit": bench_enter_exit,
    "wait_until_true_prebuilt": bench_wait_until_true_prebuilt,
    "wait_until_true_dsl": bench_wait_until_true_dsl,
    "relay_search_1": lambda: bench_relay_search(1),
    "relay_search_16": lambda: bench_relay_search(16),
    "relay_search_256": lambda: bench_relay_search(256),
    "tag_probe_256": lambda: bench_tag_probe(256),
}


def run_suite(compile_predicates: bool) -> dict[str, float]:
    cfg = get_config()
    prior = cfg.compile_predicates
    cfg.compile_predicates = compile_predicates
    try:
        return {name: round(fn(), 1) for name, fn in BENCHES.items()}
    finally:
        cfg.compile_predicates = prior


def _ratios(fast: dict[str, float], slow: dict[str, float]) -> dict[str, float]:
    return {k: round(slow[k] / fast[k], 2) for k in fast if k in slow}


@pytest.fixture(scope="module")
def results():
    committed = None
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())
    interpreted = run_suite(compile_predicates=False)
    compiled = run_suite(compile_predicates=True)
    report = stamp_build({
        "unit": "ns_per_op",
        "seed": SEED_NS_PER_OP,
        "interpreted": interpreted,
        "compiled": compiled,
        "speedup_compiled_vs_interpreted": _ratios(compiled, interpreted),
        "speedup_compiled_vs_seed": _ratios(compiled, SEED_NS_PER_OP),
    })
    import os

    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n")
    return {"committed": committed, "fresh": report}


def test_emit_report(results, capsys):
    with capsys.disabled():
        print("\n" + json.dumps(results["fresh"], indent=2))


def test_compiled_beats_interpreted_on_gated_lanes(results):
    """The compiler must actually win where the design says it wins."""
    speedups = results["fresh"]["speedup_compiled_vs_interpreted"]
    for lane in GATED_LANES:
        assert speedups[lane] > 1.0, f"{lane}: compiled slower than interpreted"


def test_ratio_gate_vs_committed_baseline(results):
    """Fail when a gated lane's speedup ratio regressed >30% vs the
    committed BENCH_core_hotpath.json (ratios, not absolute times, so the
    gate is meaningful on any runner)."""
    committed = results["committed"]
    if committed is None:
        pytest.skip("no committed BENCH_core_hotpath.json to gate against")
    skip_if_gil_mismatch(committed)
    recorded = committed["speedup_compiled_vs_interpreted"]
    measured = results["fresh"]["speedup_compiled_vs_interpreted"]
    for lane in GATED_LANES:
        floor = recorded[lane] * (1.0 - RATIO_TOLERANCE)
        assert measured[lane] >= floor, (
            f"{lane}: compiled/interpreted speedup {measured[lane]:.2f}x fell "
            f">30% below the committed {recorded[lane]:.2f}x"
        )


# -- dependency-tracked relay (BENCH_relay_dirty.json) ------------------------


@pytest.fixture(scope="module")
def dirty_results():
    committed = None
    if DIRTY_BENCH_FILE.exists():
        committed = json.loads(DIRTY_BENCH_FILE.read_text())
    lanes, dense_now = run_dirty_suite()
    report = stamp_build({
        "unit": "ns_per_op",
        "dense_seed_ns": DENSE_SEED_NS,
        "lanes": lanes,
        "sparse_speedup_tracked_vs_untracked": round(
            lanes["relay_search_256_sparse_untracked"]
            / lanes["relay_search_256_sparse"],
            2,
        ),
        "dense_ratio_vs_seed": round(dense_now / DENSE_SEED_NS, 3),
    })
    import os

    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        DIRTY_BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n")
    return {"committed": committed, "fresh": report}


def test_emit_dirty_report(dirty_results, capsys):
    with capsys.disabled():
        print("\n" + json.dumps(dirty_results["fresh"], indent=2))


def test_sparse_tracked_beats_exhaustive(dirty_results):
    """Dependency filtering must win ≥5× on the 1-of-256 sparse workload."""
    speedup = dirty_results["fresh"]["sparse_speedup_tracked_vs_untracked"]
    assert speedup >= SPARSE_MIN_SPEEDUP, (
        f"sparse tracked lane only {speedup:.2f}x faster than exhaustive "
        f"scan (need ≥{SPARSE_MIN_SPEEDUP}x)"
    )


def test_sparse_ratio_gate_vs_committed_record(dirty_results):
    """Fail when the tracked-vs-untracked speedup regressed >30% vs the
    committed BENCH_relay_dirty.json (same-process ratio, runner-agnostic)."""
    committed = dirty_results["committed"]
    if committed is None:
        pytest.skip("no committed BENCH_relay_dirty.json to gate against")
    skip_if_gil_mismatch(committed)
    floor = committed["sparse_speedup_tracked_vs_untracked"] * (
        1.0 - RATIO_TOLERANCE
    )
    measured = dirty_results["fresh"]["sparse_speedup_tracked_vs_untracked"]
    assert measured >= floor, (
        f"sparse dependency-filter speedup {measured:.2f}x fell >30% below "
        f"the committed {committed['sparse_speedup_tracked_vs_untracked']:.2f}x"
    )


def test_dense_lane_unharmed_in_committed_record(dirty_results):
    """Static check on the committed record: the tagged dense lane paid
    ≤10% for the dependency machinery when the record was captured.
    (Asserted on the committed numbers, not re-timed — absolute times are
    not comparable across runners; the live regression signal for the dense
    lane is the ratio gate above.)"""
    committed = dirty_results["committed"]
    if committed is None:
        pytest.skip("no committed BENCH_relay_dirty.json to gate against")
    assert committed["dense_ratio_vs_seed"] <= DENSE_MAX_RATIO_VS_SEED, (
        f"committed dense relay_search_256 ratio "
        f"{committed['dense_ratio_vs_seed']:.3f} exceeds "
        f"{DENSE_MAX_RATIO_VS_SEED} vs the pre-subsystem record"
    )
