"""Production-traffic load benchmarks: SLO records + regression gates.

Runs the full-size ``repro.loadsim`` lanes — open-loop arrivals, monitor-
backed services, chaos faults — and writes three committed records at the
repo root (set ``REPRO_WRITE_BENCH=1``):

* ``BENCH_load_steady.json`` — steady Poisson load within capacity on all
  three services (buffer / pizza / multicast);
* ``BENCH_load_burst.json``  — on/off overload on all three services plus
  an explicit supply-starved shedding lane (pizza with a slow restocker
  and a tiny admission queue);
* ``BENCH_load_faults.json`` — a supervised server kill per service
  (worker failure) and a seized-lock shard freeze (network partition).

Every lane run here is itself a *hard* gate: the scenario helpers run
``strict`` and raise :class:`~repro.loadsim.SLOViolation` on any lost
request, missed SLO, unfired kill, or failed recovery — so the CI
``load-smoke`` job fails on correctness regressions directly, not only on
latency drift.

On top of that, a ratio gate compares each lane's p95 *relative to its SLO
budget* against the committed record: the fresh ``p95 / budget`` ratio may
not exceed the committed ratio by more than 30%.  Comparing budget ratios
(not absolute milliseconds) keeps the gate runner-agnostic, and a noise
floor exempts lanes whose p95 sits deep in scheduler-noise territory —
a sub-millisecond service jittering to 3 ms is not a regression, a 400 ms
budget being half-spent is.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from benchmarks.conftest import skip_if_gil_mismatch, stamp_build
from repro.loadsim import (
    run_burst_load,
    run_network_partition,
    run_steady_load,
    run_worker_failure,
)

_ROOT = pathlib.Path(__file__).resolve().parent.parent
STEADY_FILE = _ROOT / "BENCH_load_steady.json"
BURST_FILE = _ROOT / "BENCH_load_burst.json"
FAULTS_FILE = _ROOT / "BENCH_load_faults.json"

SEED = 11
RATIO_TOLERANCE = 0.30
#: lanes whose p95 stays under this are never ratio-gated — microsecond
#: services jitter by whole multiples run to run; the gate is for budget
#: erosion, not scheduler noise
NOISE_FLOOR_MS = 25.0


def _lane(report, budget_ms: float, group: str = "all") -> dict:
    """One committed lane: the full report body + its SLO-ratio gate key."""
    body = report.to_dict()
    p95 = body["groups"][group]["latency_ms"]["p95"] if group != "all" \
        else body["latency_ms"]["p95"]
    return {
        **body,
        "gate_group": group,
        "p95_budget_ms": budget_ms,
        "slo_ratio": round(p95 / budget_ms, 4),
    }


# ------------------------------------------------------------------ suites


def run_steady_suite() -> dict:
    deadline = 0.5
    budget = 0.8 * deadline * 1e3   # the strict steady-lane p95 SLO
    lanes = {}
    for service, rate in (("buffer", 60.0), ("pizza", 40.0),
                          ("multicast", 60.0)):
        report = run_steady_load(service, rate=rate, duration=3.0,
                                 seed=SEED, deadline=deadline)
        lanes[f"steady_{service}"] = _lane(report, budget)
    return stamp_build({"unit": "ms", "lanes": lanes})


def run_burst_suite() -> dict:
    deadline = 0.3
    budget = deadline * 1e3         # the post-burst recovery p95 bound
    lanes = {}
    for service in ("buffer", "pizza", "multicast"):
        report = run_burst_load(service, duration=3.0, seed=SEED,
                                deadline=deadline)
        lanes[f"burst_{service}"] = _lane(report, budget)
    # supply-starved overload: a slow restocker + tiny admission queue force
    # real load-shedding (strict recovery still applies at the base rate,
    # but the strict zero-shed SLO obviously cannot — run non-strict and
    # assert the shedding + accounting invariants by hand)
    report = run_burst_load(
        "pizza", base_rate=20.0, burst_rate=120.0, duration=3.0,
        seed=SEED, deadline=deadline, workers=3, admission_capacity=8,
        strict=False,
        service_kwargs={"prefill": 10, "restock_interval": 0.02})
    report.assert_accounted()
    lanes["burst_overload_pizza"] = _lane(report, budget)
    return stamp_build({"unit": "ms", "lanes": lanes})


def run_faults_suite() -> dict:
    lanes = {}
    for service in ("buffer", "pizza", "multicast"):
        report = run_worker_failure(service, rate=50.0, duration=4.0,
                                    kill_at=1.2, seed=SEED, deadline=0.5)
        lanes[f"worker_failure_{service}"] = _lane(report, 0.5 * 1e3)
    report = run_network_partition(
        rate=60.0, duration=4.0, partition_at=1.0, heal_after=1.0,
        seed=SEED, deadline=0.4)
    lanes["network_partition_multicast"] = _lane(
        report, 0.4 * 1e3, group="healthy")
    return stamp_build({"unit": "ms", "lanes": lanes})


def _results(bench_file: pathlib.Path, suite) -> dict:
    committed = None
    if bench_file.exists():
        committed = json.loads(bench_file.read_text())
    fresh = suite()
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        bench_file.write_text(json.dumps(fresh, indent=2) + "\n")
    return {"committed": committed, "fresh": fresh}


@pytest.fixture(scope="module")
def steady_results():
    return _results(STEADY_FILE, run_steady_suite)


@pytest.fixture(scope="module")
def burst_results():
    return _results(BURST_FILE, run_burst_suite)


@pytest.fixture(scope="module")
def faults_results():
    return _results(FAULTS_FILE, run_faults_suite)


def _summary(results: dict) -> dict:
    return {
        name: {
            "p95_ms": lane["latency_ms"]["p95"],
            "p99_ms": lane["latency_ms"]["p99"],
            "throughput_rps": lane["throughput_rps"],
            "totals": lane["totals"],
            "slo_ratio": lane["slo_ratio"],
        }
        for name, lane in results["fresh"]["lanes"].items()
    }


def _gate_ratios(results: dict) -> None:
    """Fresh p95/budget may not exceed the committed ratio by >30%,
    unless the fresh p95 is still under the absolute noise floor."""
    committed = results["committed"]
    if committed is None:
        pytest.skip("no committed record to gate against")
    skip_if_gil_mismatch(committed)
    for name, lane in results["fresh"]["lanes"].items():
        base = committed["lanes"].get(name)
        if base is None:
            continue   # new lane since the committed record
        allowed = max(
            base["slo_ratio"] * (1.0 + RATIO_TOLERANCE),
            NOISE_FLOOR_MS / lane["p95_budget_ms"],
        )
        assert lane["slo_ratio"] <= allowed, (
            f"{name}: fresh p95 spends {lane['slo_ratio']:.0%} of its "
            f"{lane['p95_budget_ms']:.0f}ms budget, >30% above the "
            f"committed {base['slo_ratio']:.0%}")


# ------------------------------------------------------------------- steady


def test_emit_steady_report(steady_results, capsys):
    with capsys.disabled():
        print("\n" + json.dumps(_summary(steady_results), indent=2))


def test_steady_lanes_fully_accounted(steady_results):
    """The strict runs already enforced the SLO; re-assert the accounting
    identity on the serialized record (what reviewers read)."""
    for name, lane in steady_results["fresh"]["lanes"].items():
        assert lane["in_flight"] == 0, f"{name} lost requests"
        assert lane["offered"] == sum(lane["totals"].values()), name
        assert lane["totals"]["completed"] > 0, name


def test_steady_ratio_gate_vs_committed(steady_results):
    _gate_ratios(steady_results)


# -------------------------------------------------------------------- burst


def test_emit_burst_report(burst_results, capsys):
    with capsys.disabled():
        print("\n" + json.dumps(_summary(burst_results), indent=2))


def test_burst_overload_sheds_explicitly(burst_results):
    """The overload lane must show *graceful* degradation: real sheds or
    timeouts (never silent loss), with everything still accounted."""
    lane = burst_results["fresh"]["lanes"]["burst_overload_pizza"]
    assert lane["in_flight"] == 0
    assert lane["totals"]["shed"] + lane["totals"]["timed_out"] > 0
    assert lane["totals"]["errors"] == 0


def test_burst_ratio_gate_vs_committed(burst_results):
    _gate_ratios(burst_results)


# ------------------------------------------------------------------- faults


def test_emit_faults_report(faults_results, capsys):
    with capsys.disabled():
        print("\n" + json.dumps(_summary(faults_results), indent=2))


def test_worker_failure_kills_and_recovers(faults_results):
    """Each kill lane: the chaos kill fired, a supervised restart followed,
    and no future was lost (strict mode asserted SLO recovery already)."""
    for service in ("buffer", "pizza", "multicast"):
        lane = faults_results["fresh"]["lanes"][f"worker_failure_{service}"]
        assert lane["extra"]["chaos"]["injected"]["kill"] >= 1, service
        restarts = sum(s["restarts"] for s in lane["extra"]["supervision"])
        assert restarts >= 1, service
        assert lane["in_flight"] == 0, service


def test_partition_isolates_and_drains(faults_results):
    lane = faults_results["fresh"]["lanes"]["network_partition_multicast"]
    groups = lane["groups"]
    assert groups["healthy"]["counts"]["completed"] > 0
    part = groups["partitioned"]["counts"]
    assert part.get("timed_out", 0) + part.get("shed", 0) > 0
    assert lane["in_flight"] == 0


def test_faults_ratio_gate_vs_committed(faults_results):
    _gate_ratios(faults_results)


# ------------------------------------------- committed-record acceptance


def test_committed_records_cover_required_grid():
    """ISSUE acceptance: the committed ``BENCH_load_*.json`` records cover
    >=3 services x >=3 scenarios (steady, burst, worker-failure at
    minimum), each lane carrying p50/p95/p99, throughput, shed/timeout
    counts, and the build block."""
    files = [STEADY_FILE, BURST_FILE, FAULTS_FILE]
    missing = [f.name for f in files if not f.exists()]
    if missing:
        pytest.skip(f"committed records not present: {missing}")
    services, scenarios = set(), set()
    for f in files:
        record = json.loads(f.read_text())
        assert "build" in record and "python" in record["build"], f.name
        for name, lane in record["lanes"].items():
            services.add(lane["service"])
            scenarios.add(lane["scenario"])
            for q in ("p50", "p95", "p99"):
                assert q in lane["latency_ms"], (f.name, name, q)
            assert "throughput_rps" in lane, (f.name, name)
            assert {"shed", "timed_out"} <= set(lane["totals"]), (f.name, name)
            assert lane["in_flight"] == 0, (f.name, name)
    assert {"buffer", "pizza", "multicast"} <= services
    assert {"steady", "burst", "worker_failure",
            "network_partition"} <= scenarios
