"""Delegation-pipeline + multisynch benchmark, with a ratio-based perf gate.

Measures the ISSUE-3 acceptance lanes (see ``active_pipeline_lanes``):
queue throughput at 1/4/8 producers, delegated submit→complete throughput,
submit→get latency, and multisynch acquire/release cycles — plus two
in-process comparison lanes that make the gate runner-independent:

* ``queue_vs_legacy_4p`` — the new GIL-atomic ticket/deque MPSC queue
  against the vendored pre-PR implementation (``AtomicInteger`` micro-lock
  + ``putlock``), same harness, same process;
* ``multisynch_cached_vs_uncached`` — the flatten-cache fast path against
  the walk/dedupe/sort path (``_cache_enabled = False``).

Results are written to ``BENCH_active_pipeline.json`` at the repo root (set
``REPRO_WRITE_BENCH=1``).  The committed copy records the numbers backing
docs/performance.md: its ``speedup_vs_seed`` column must show ≥2× on
``submit_complete_8p`` and ≥1.5× on both multisynch lanes (asserted
statically below — the acceptance record cannot silently rot).

The CI perf-smoke job re-runs the comparison lanes and gates on *ratios*
(new vs legacy, cached vs uncached, measured on the same host in the same
process), not absolute throughput: absolute ops/s vary wildly across
runners, but the ratio is a property of the code.  The gate fails when a
measured ratio falls more than 30% below the committed one.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from collections import deque
from typing import Any, Optional

import pytest

from benchmarks.active_pipeline_lanes import (
    multisynch_cycle,
    queue_ops,
    run_lanes,
)
from benchmarks.conftest import skip_if_gil_mismatch, stamp_build
from repro.multi import multisync as _multisync_mod

BENCH_FILE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_active_pipeline.json"
)

#: pre-PR lane numbers (AtomicInteger+putlock queue, per-task allocation,
#: eager-CV futures, uncached multisynch flatten), measured by this same
#: benchmark on the host that produced the committed record
SEED_LANES = {
    "queue_ops_1p": 491466.2,
    "queue_ops_4p": 456817.7,
    "queue_ops_8p": 426487.3,
    "submit_complete_8p": 55283.2,
    "submit_get_latency_ns": 17285.5,
    "multisynch_cycle_2": 266081.2,
    "multisynch_cycle_4": 185676.3,
}

#: the ISSUE-3 acceptance floors, asserted against the committed record
ACCEPTANCE = {
    "submit_complete_8p": 2.0,
    "multisynch_cycle_2": 1.5,
    "multisynch_cycle_4": 1.5,
}

GATED_RATIOS = ("queue_vs_legacy_4p", "multisynch_cached_vs_uncached")
RATIO_TOLERANCE = 0.30


# -------------------------------------------------------------- legacy queue
# The pre-PR SingleConsumerBoundedQueue, vendored verbatim so the perf gate
# can measure new-vs-old in one process on any runner.
class _LegacyAtomicInteger:
    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0):
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> int:
        with self._lock:
            return self._value

    def get_and_increment(self) -> int:
        with self._lock:
            old = self._value
            self._value = old + 1
            return old

    def get_and_add(self, delta: int) -> int:
        with self._lock:
            old = self._value
            self._value = old + delta
            return old


class LegacyQueue:
    """Pre-PR queue: putlock-guarded producers, micro-locked counter."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._count = _LegacyAtomicInteger(0)
        self._putlock = threading.Lock()
        self._not_full = threading.Condition(self._putlock)
        self._items: deque[Any] = deque()
        self._take_count = 0

    def put(self, item: Any) -> None:
        with self._putlock:
            while self._count.get() == self.capacity:
                self._not_full.wait()
            self._items.append(item)
            lcount = self._count.get_and_increment()
            if lcount + 1 < self.capacity:
                self._not_full.notify()

    def _signal_not_full(self) -> None:
        with self._putlock:
            self._not_full.notify()

    def take(self) -> Optional[Any]:
        if self._take_count > 0:
            self._take_count -= 1
            return self._items.popleft()
        self._take_count = self._count.get()
        if self._take_count == 0:
            self._signal_not_full()
            return None
        x = self._items.popleft()
        lcount = self._count.get_and_add(-self._take_count)
        if lcount == self._take_count:
            self._signal_not_full()
        self._take_count -= 1
        return x


# ------------------------------------------------------------------ the run
def _comparison_lanes() -> dict[str, float]:
    new_q = queue_ops(4)
    legacy_q = queue_ops(4, queue_factory=LegacyQueue)
    cached = multisynch_cycle(2)
    _multisync_mod._cache_enabled = False
    try:
        uncached = multisynch_cycle(2)
    finally:
        _multisync_mod._cache_enabled = True
    return {
        "queue_vs_legacy_4p": round(new_q / legacy_q, 2),
        "multisynch_cached_vs_uncached": round(cached / uncached, 2),
    }


@pytest.fixture(scope="module")
def results():
    committed = None
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())
    lanes = run_lanes()
    ratios = _comparison_lanes()
    speedup_vs_seed = {}
    for lane, value in lanes.items():
        seed = SEED_LANES[lane]
        if lane.endswith("_ns"):     # latency: lower is better
            speedup_vs_seed[lane] = round(seed / value, 2)
        else:
            speedup_vs_seed[lane] = round(value / seed, 2)
    report = stamp_build({
        "unit": "ops_per_s (latency lanes: ns_per_op)",
        "seed": SEED_LANES,
        "lanes": lanes,
        "speedup_vs_seed": speedup_vs_seed,
        "comparison_ratios": ratios,
    })
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        BENCH_FILE.write_text(json.dumps(report, indent=2) + "\n")
    return {"committed": committed, "fresh": report}


def test_emit_report(results, capsys):
    with capsys.disabled():
        print("\n" + json.dumps(results["fresh"], indent=2))


def test_new_queue_beats_legacy(results):
    """The zero-lock admission path must actually win over the micro-lock
    design, measured in this very process."""
    assert results["fresh"]["comparison_ratios"]["queue_vs_legacy_4p"] > 1.0


def test_flatten_cache_beats_uncached(results):
    """The cached multisynch construction must beat re-flattening."""
    assert (
        results["fresh"]["comparison_ratios"]["multisynch_cached_vs_uncached"]
        > 1.0
    )


def test_ratio_gate_vs_committed_baseline(results):
    """Fail when a comparison ratio regressed >30% vs the committed
    BENCH_active_pipeline.json (ratios, not absolute ops/s, so the gate is
    meaningful on any runner)."""
    committed = results["committed"]
    if committed is None:
        pytest.skip("no committed BENCH_active_pipeline.json to gate against")
    skip_if_gil_mismatch(committed)
    recorded = committed["comparison_ratios"]
    measured = results["fresh"]["comparison_ratios"]
    for lane in GATED_RATIOS:
        floor = recorded[lane] * (1.0 - RATIO_TOLERANCE)
        assert measured[lane] >= floor, (
            f"{lane}: ratio {measured[lane]:.2f}x fell >30% below the "
            f"committed {recorded[lane]:.2f}x"
        )


def test_committed_record_meets_acceptance():
    """The committed record must show the ISSUE-3 acceptance speedups
    (≥2× submit→complete at 8 producers, ≥1.5× multisynch cycles) vs the
    pre-PR seed.  Static check — no timing, deterministic on any runner."""
    if not BENCH_FILE.exists():
        pytest.skip("no committed BENCH_active_pipeline.json yet")
    committed = json.loads(BENCH_FILE.read_text())
    speedups = committed["speedup_vs_seed"]
    for lane, floor in ACCEPTANCE.items():
        assert speedups[lane] >= floor, (
            f"{lane}: committed record shows {speedups[lane]:.2f}x, "
            f"acceptance requires ≥{floor}x"
        )
