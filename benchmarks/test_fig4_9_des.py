"""Fig. 4.9 — distributed discrete-event simulation throughput."""

from repro.bench.figures_ch45 import fig4_9_des
from repro.problems.des import run_des


def test_fig4_9(benchmark, record):
    fig = fig4_9_des()
    record("fig4_9_des", fig.render())
    benchmark(lambda: run_des("cc", 3, 20))
